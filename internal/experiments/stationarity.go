package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
)

// StationarityPoint is one snapshot of the Theorem-2 measurement.
type StationarityPoint struct {
	Round int
	// MoreauGradSq is the squared norm of the (1/2L)-Moreau envelope
	// gradient of Phi(w) = max_p F(w, p) — the §5.2 optimality measure.
	MoreauGradSq float64
	Worst        float64
}

// StationarityResult verifies Theorem 2 empirically: along a non-convex
// HierMinimax run, the Moreau-envelope stationarity measure
// ||∇Φ_{1/2L}(w)||² must trend to zero.
type StationarityResult struct {
	Points []StationarityPoint
	// First and Last summarize the trend the theorem predicts.
	First, Last float64
}

// Stationarity trains the non-convex workload and measures the Moreau
// surrogate at checkpoints along the trajectory. The training run is
// one scheduler job (checkpoints are inherently sequential); the probe
// at each captured model is then an independent job.
func Stationarity(pool *sched.Pool, scale Scale, seed uint64) (*StationarityResult, error) {
	var dim, h1, h2, perTrain, perTest, rounds, probes int
	var etaW, etaP float64
	switch scale {
	case Smoke:
		dim, h1, h2 = 24, 12, 8
		perTrain, perTest, rounds, probes = 120, 40, 400, 4
		etaW, etaP = 0.02, 0.001
	case Small:
		dim, h1, h2 = 48, 24, 12
		perTrain, perTest, rounds, probes = 400, 100, 1200, 6
		etaW, etaP = 0.01, 0.001
	default:
		dim, h1, h2 = 196, 300, 100
		perTrain, perTest, rounds, probes = 1500, 150, 6000, 8
		etaW, etaP = 0.005, 0.001
	}
	profile := data.FashionMNISTLike()
	profile.Dim = dim
	train, test := profile.GenerateShared(perTrain, perTest, seed)
	fed := data.Similarity(train, test, 10, 3, 0.5, perTest*2, seed+1)
	prob := fl.NewProblem(fed, model.NewMLP(dim, h1, h2, 10))

	// Capture checkpoints along one training run, then measure the
	// Moreau surrogate at each captured model.
	var checkpoints []*fl.Checkpoint
	cfg := fl.Config{
		Rounds: rounds, Tau1: 2, Tau2: 2,
		EtaW: etaW, EtaP: etaP,
		BatchSize: 8, LossBatch: 16,
		SampledEdges: 2, Seed: seed,
	}
	every := rounds / probes
	if _, err := sched.Map(pool, "stationarity-train", 1, func(int) (struct{}, error) {
		_, err := core.HierMinimaxWithOptions(prob, cfg, fl.RunOptions{
			CheckpointEvery: every,
			OnCheckpoint:    func(c *fl.Checkpoint) { checkpoints = append(checkpoints, c) },
		})
		return struct{}{}, err
	}); err != nil {
		return nil, fmt.Errorf("experiments: stationarity: %w", err)
	}

	// An empirical smoothness scale for the Moreau parameter: the §5.2
	// analysis uses 1/2L; the exact L is unknown for the MLP, so a fixed
	// moderate value is used consistently across snapshots (only the
	// trend matters).
	const lSmooth = 1.0
	points, err := sched.Map(pool, "stationarity-probe", len(checkpoints), func(i int) (StationarityPoint, error) {
		c := checkpoints[i]
		m := prob.Model.Clone()
		grad2 := metrics.MoreauGradNormSq(m, c.W, fed, prob.W, prob.P, lSmooth, 25, etaW)
		ev := metrics.EvaluateAreas(m, c.W, fed)
		return StationarityPoint{
			Round:        c.Round,
			MoreauGradSq: grad2,
			Worst:        metrics.Worst(ev.Accuracy),
		}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: stationarity: %w", err)
	}
	res := &StationarityResult{Points: points}
	if len(res.Points) > 0 {
		res.First = res.Points[0].MoreauGradSq
		res.Last = res.Points[len(res.Points)-1].MoreauGradSq
	}
	return res, nil
}

// Render prints the stationarity trajectory.
func (r *StationarityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Theorem 2 companion: Moreau-envelope stationarity along a non-convex run ==\n")
	fmt.Fprintf(&b, "%8s %16s %9s\n", "round", "||dPhi_1/2L||^2", "worst")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %16.5f %9.4f\n", p.Round, p.MoreauGradSq, p.Worst)
	}
	fmt.Fprintf(&b, "trend: %.5f -> %.5f (Theorem 2 predicts decay toward 0)\n", r.First, r.Last)
	return b.String()
}

// WriteFiles exports the trajectory.
func (r *StationarityResult) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Round), ftoa(p.MoreauGradSq), ftoa(p.Worst),
		})
	}
	if err := writeCSV(dir+"/"+base+".csv",
		[]string{"round", "moreau_grad_sq", "worst"}, rows); err != nil {
		return err
	}
	return writeJSON(dir+"/"+base+".json", r)
}

var _ Artifact = (*StationarityResult)(nil)
