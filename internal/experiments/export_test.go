package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFigExport(t *testing.T) {
	dir := t.TempDir()
	res := &FigResult{
		Name:        "fig-test",
		TargetWorst: 0.5,
		ToTarget:    map[AlgorithmName]int{HierMinimax: 10},
		Final:       map[AlgorithmName]Summary{HierMinimax: {Average: 0.9, Worst: 0.7, Variance: 3}},
		Series: []Series{{
			Algorithm:   HierMinimax,
			Rounds:      []int{0, 10},
			CloudRounds: []int64{0, 40},
			Average:     []float64{0.1, 0.9},
			Worst:       []float64{0, 0.7},
		}},
	}
	var out bytes.Buffer
	if err := Export(res, &out, dir, "fig-test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig-test") {
		t.Fatal("render missing from output")
	}
	rows := readCSV(t, filepath.Join(dir, "fig-test.csv"))
	if len(rows) != 3 { // header + 2 points
		t.Fatalf("csv rows: %d", len(rows))
	}
	if rows[0][0] != "algorithm" || rows[2][3] != "0.9" {
		t.Fatalf("csv content: %v", rows)
	}
	var back FigResult
	raw, err := os.ReadFile(filepath.Join(dir, "fig-test.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "fig-test" || len(back.Series) != 1 || back.Series[0].Worst[1] != 0.7 {
		t.Fatalf("json round trip: %+v", back)
	}
}

func TestTable2Export(t *testing.T) {
	dir := t.TempDir()
	res := &Table2Result{Rows: []Table2Row{
		{Dataset: "d1", Method: HierFAvg, Average: 0.8, Worst: 0.5, Variance: 100},
		{Dataset: "d1", Method: HierMinimax, Average: 0.79, Worst: 0.6, Variance: 40},
	}}
	if err := res.WriteFiles(dir, "t2"); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "t2.csv"))
	if len(rows) != 3 || rows[2][1] != "HierMinimax" {
		t.Fatalf("csv: %v", rows)
	}
}

func TestTradeoffExport(t *testing.T) {
	dir := t.TempDir()
	res := &TradeoffResult{TotalSlots: 100, Points: []TradeoffPoint{
		{Alpha: 0, Tau1: 1, Tau2: 1, Rounds: 100, CloudRounds: 400, DualityGap: 0.1},
		{Alpha: 0.5, Tau1: 3, Tau2: 3, Rounds: 11, CloudRounds: 44, DualityGap: 0.5},
	}}
	if err := res.WriteFiles(dir, "t1"); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "t1.csv"))
	if len(rows) != 3 || rows[1][0] != "0" || rows[2][5] != "0.5" {
		t.Fatalf("csv: %v", rows)
	}
}

func TestAblationExport(t *testing.T) {
	dir := t.TempDir()
	res := &AblationResult{Rows: []AblationRow{
		{Study: "A1", Variant: "v1", Summary: Summary{Average: 0.9}, CloudRounds: 10, UplinkMB: 2.5},
	}}
	if err := res.WriteFiles(dir, "abl"); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "abl.csv"))
	if len(rows) != 2 || rows[1][6] != "2.5" {
		t.Fatalf("csv: %v", rows)
	}
}

func TestExportNoDir(t *testing.T) {
	var out bytes.Buffer
	res := &Table2Result{}
	if err := Export(res, &out, "", "x"); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no render output")
	}
}

func TestExportCreatesDir(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "nested", "artifacts")
	res := &Table2Result{Rows: []Table2Row{{Dataset: "d", Method: HierFAvg}}}
	var out bytes.Buffer
	if err := Export(res, &out, dir, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x.csv")); err != nil {
		t.Fatal("csv not created in nested dir")
	}
}

func TestFigExportWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	res := &FigResult{
		Name: "fig-svg",
		Series: []Series{{
			Algorithm:   HierMinimax,
			Rounds:      []int{0, 10, 20},
			CloudRounds: []int64{0, 40, 80},
			Average:     []float64{0.1, 0.5, 0.9},
			Worst:       []float64{0, 0.3, 0.7},
		}},
		ToTarget: map[AlgorithmName]int{},
		Final:    map[AlgorithmName]Summary{},
	}
	if err := res.WriteFiles(dir, "fig-svg"); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"-average.svg", "-worst.svg"} {
		raw, err := os.ReadFile(filepath.Join(dir, "fig-svg"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(raw), "<svg") || !strings.Contains(string(raw), "HierMinimax") {
			t.Fatalf("%s incomplete", suffix)
		}
	}
}
