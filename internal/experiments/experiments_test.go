package experiments

import (
	"strings"
	"testing"
)

// The smoke-scale assertions check the qualitative shapes of §6 that are
// robust at small scale; exact margins are checked manually at the
// recorded Small scale (see EXPERIMENTS.md).

func TestFig3Shape(t *testing.T) {
	res, err := Fig3(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("expected 5 curves, got %d", len(res.Series))
	}
	hmm := res.Final[HierMinimax]
	hfa := res.Final[HierFAvg]
	fed := res.Final[FedAvg]
	// Minimax fairness: HierMinimax beats its minimization twin on the
	// worst area and on variance (Fig. 3's core message).
	if hmm.Worst <= hfa.Worst {
		t.Fatalf("HierMinimax worst %v not above HierFAvg %v", hmm.Worst, hfa.Worst)
	}
	if hmm.Variance >= hfa.Variance {
		t.Fatalf("HierMinimax variance %v not below HierFAvg %v", hmm.Variance, hfa.Variance)
	}
	if hmm.Variance >= fed.Variance {
		t.Fatalf("HierMinimax variance %v not below FedAvg %v", hmm.Variance, fed.Variance)
	}
	// The price of fairness is small: average within a few points.
	if hfa.Average-hmm.Average > 0.08 {
		t.Fatalf("average accuracy cost too large: %v vs %v", hmm.Average, hfa.Average)
	}
	// Every method must have learned something real.
	for algo, f := range res.Final {
		if f.Average < 0.7 {
			t.Fatalf("%s average %v", algo, f.Average)
		}
	}
	// HierMinimax reaches the worst-accuracy target; its minimization
	// twin does not (at this scale the uniform plateau sits below it).
	if res.ToTarget[HierMinimax] == 0 {
		t.Fatalf("HierMinimax never reached the %v target", res.TargetWorst)
	}
	if txt := res.Render(); !strings.Contains(txt, "HierMinimax") || !strings.Contains(txt, "Rounds to reach") {
		t.Fatal("Render incomplete")
	}
}

func TestFig3CurvesAligned(t *testing.T) {
	res, err := Fig3(nil, Smoke, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Rounds) != len(s.Average) || len(s.Rounds) != len(s.Worst) || len(s.Rounds) != len(s.CloudRounds) {
			t.Fatalf("%s: ragged series", s.Algorithm)
		}
		for i := 1; i < len(s.Rounds); i++ {
			if s.Rounds[i] <= s.Rounds[i-1] || s.CloudRounds[i] < s.CloudRounds[i-1] {
				t.Fatalf("%s: non-monotone axes", s.Algorithm)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	hmm := res.Final[HierMinimax]
	hfa := res.Final[HierFAvg]
	if hmm.Worst <= hfa.Worst {
		t.Fatalf("HierMinimax worst %v not above HierFAvg %v", hmm.Worst, hfa.Worst)
	}
	if hmm.Variance >= hfa.Variance {
		t.Fatalf("HierMinimax variance %v not below HierFAvg %v", hmm.Variance, hfa.Variance)
	}
	// Hierarchical methods do tau1*tau2 local slots per round vs tau1
	// (or 1) for the two-layer ones, so at equal rounds they lead on
	// average accuracy — the §6.2 communication-efficiency effect.
	if hmm.Average <= res.Final[StochasticAFL].Average {
		t.Fatalf("HierMinimax average %v not above AFL %v", hmm.Average, res.Final[StochasticAFL].Average)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("expected 10 rows, got %d", len(res.Rows))
	}
	// The headline datasets must show the fairness win.
	for _, ds := range []string{"emnist-digits-like", "fashion-mnist-like"} {
		hfa := res.Row(ds, HierFAvg)
		hmm := res.Row(ds, HierMinimax)
		if hfa == nil || hmm == nil {
			t.Fatalf("missing rows for %s", ds)
		}
		if hmm.Worst <= hfa.Worst {
			t.Fatalf("%s: HierMinimax worst %v not above HierFAvg %v", ds, hmm.Worst, hfa.Worst)
		}
		if hmm.Variance >= hfa.Variance {
			t.Fatalf("%s: variance not reduced", ds)
		}
	}
	// All rows carry sane numbers.
	for _, r := range res.Rows {
		if r.Average <= 0 || r.Average > 1 || r.Worst < 0 || r.Worst > 1 || r.Variance < 0 {
			t.Fatalf("row %+v out of range", r)
		}
	}
	if !strings.Contains(res.Render(), "synthetic") {
		t.Fatal("Render incomplete")
	}
}

func TestTradeoffShape(t *testing.T) {
	res, err := Tradeoff(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 alphas, got %d", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		// Larger alpha => strictly less cloud communication (Table 1's
		// Theta(T^{1-alpha}) column).
		if cur.CloudRounds >= prev.CloudRounds {
			t.Fatalf("cloud rounds not decreasing: %d -> %d", prev.CloudRounds, cur.CloudRounds)
		}
		if cur.Tau1*cur.Tau2 <= prev.Tau1*prev.Tau2 {
			t.Fatal("tau product not increasing in alpha")
		}
	}
	// The convergence side: the duality gap at alpha=0 must beat the gap
	// at the most communication-starved alpha=0.75.
	if res.Points[0].DualityGap >= res.Points[3].DualityGap {
		t.Fatalf("duality gap not degrading with alpha: %v vs %v",
			res.Points[0].DualityGap, res.Points[3].DualityGap)
	}
	for _, p := range res.Points {
		if p.DualityGap < -1e-6 {
			t.Fatalf("negative duality gap %v at alpha %v", p.DualityGap, p.Alpha)
		}
	}
	if !strings.Contains(res.Render(), "alpha") {
		t.Fatal("Render incomplete")
	}
}

func TestAblationsShape(t *testing.T) {
	res, err := Ablations(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	byStudy := map[string][]AblationRow{}
	for _, r := range res.Rows {
		byStudy[r.Study] = append(byStudy[r.Study], r)
	}
	if len(byStudy["A1-checkpoint"]) != 2 {
		t.Fatal("A1 incomplete")
	}
	// A2: more participation must not reduce cloud rounds (same count)
	// but the rows must exist for each m_E.
	if len(byStudy["A2-participation"]) != 4 {
		t.Fatalf("A2 rows: %d", len(byStudy["A2-participation"]))
	}
	// A3: quantized uplinks move fewer megabytes than exact.
	a3 := byStudy["A3-quantization"]
	if len(a3) != 3 {
		t.Fatalf("A3 rows: %d", len(a3))
	}
	if !(a3[0].UplinkMB > a3[1].UplinkMB && a3[1].UplinkMB > a3[2].UplinkMB) {
		t.Fatalf("uplink MB not decreasing with bits: %v %v %v", a3[0].UplinkMB, a3[1].UplinkMB, a3[2].UplinkMB)
	}
	// Quantization must not destroy learning.
	for _, r := range a3 {
		if r.Average < 0.7 {
			t.Fatalf("A3 %s average %v", r.Variant, r.Average)
		}
	}
	// A4: every capped run respects learning sanity.
	if len(byStudy["A4-constraint"]) != 3 {
		t.Fatal("A4 incomplete")
	}
	// A5: the 4-layer tree must spend fewer cloud rounds than the
	// 3-layer tree at the same slot budget, and still learn.
	a5 := byStudy["A5-depth"]
	if len(a5) != 2 {
		t.Fatalf("A5 rows: %d", len(a5))
	}
	if a5[1].CloudRounds >= a5[0].CloudRounds {
		t.Fatalf("4-layer cloud rounds %d not below 3-layer %d", a5[1].CloudRounds, a5[0].CloudRounds)
	}
	for _, r := range a5 {
		if r.Average < 0.7 {
			t.Fatalf("A5 %s average %v", r.Variant, r.Average)
		}
	}
	if !strings.Contains(res.Render(), "A3-quantization") {
		t.Fatal("Render incomplete")
	}
}

func TestChaosSweepShape(t *testing.T) {
	res, err := ChaosSweep(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 crash rates, got %d", len(res.Rows))
	}
	base := res.Rows[0]
	if base.CrashProb != 0 || base.Crashes != 0 || base.Timeouts != 0 || base.MessagesLost != 0 {
		t.Fatalf("fault-free row reports fault activity: %+v", base)
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Crashes == 0 {
			t.Fatalf("crash rate %v produced no crashes", cur.CrashProb)
		}
		// One shared fault seed makes the crash sets nested in the rate.
		if cur.Crashes < prev.Crashes {
			t.Fatalf("crashes not monotone in rate: %d at %v, %d at %v",
				prev.Crashes, prev.CrashProb, cur.Crashes, cur.CrashProb)
		}
		if cur.SimulatedMs <= base.SimulatedMs {
			t.Fatalf("timeout charges did not stretch simulated time at rate %v", cur.CrashProb)
		}
	}
	// Graceful degradation: training still works at a 30% crash rate.
	worstCase := res.Rows[len(res.Rows)-1]
	if worstCase.Average < base.Average-0.15 {
		t.Fatalf("average collapsed under faults: %v vs fault-free %v", worstCase.Average, base.Average)
	}
	if worstCase.Worst < 0.3 {
		t.Fatalf("worst-group accuracy collapsed under faults: %v", worstCase.Worst)
	}
	if txt := res.Render(); !strings.Contains(txt, "crash") || !strings.Contains(txt, "timeouts") {
		t.Fatal("Render incomplete")
	}
}

func TestCompressionSweepShape(t *testing.T) {
	res, err := CompressionSweep(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != compressionRegimes*2 {
		t.Fatalf("expected %d rows, got %d", compressionRegimes*2, len(res.Rows))
	}
	for leg := 0; leg < 2; leg++ {
		rows := res.Rows[leg*compressionRegimes : (leg+1)*compressionRegimes]
		dense := rows[0]
		if dense.Regime != "none" || dense.BytesRatio != 1 {
			t.Fatalf("leg %d: dense reference row is %+v", leg, dense)
		}
		faulted := leg == 1
		for _, r := range rows {
			if r.Faulted != faulted {
				t.Fatalf("row %+v on wrong leg", r)
			}
			if faulted && (r.Crashes == 0 || r.MessagesLost == 0) {
				t.Fatalf("chaos leg %s saw no faults: %+v", r.Regime, r)
			}
			if !faulted && (r.Crashes != 0 || r.MessagesLost != 0) {
				t.Fatalf("clean leg %s reports fault activity: %+v", r.Regime, r)
			}
			// Compression is a usable operating point, not just a
			// consistent one: every regime still learns.
			if r.Average < 0.6 {
				t.Fatalf("%s (faulted=%v) average %v", r.Regime, faulted, r.Average)
			}
		}
		// Every compressed regime moves strictly fewer bytes than dense,
		// and the uniform widths order as 16 > 8 > 4 bits.
		for _, r := range rows[1:] {
			if r.WireBytes >= dense.WireBytes || r.BytesRatio >= 1 {
				t.Fatalf("%s (faulted=%v) not cheaper than dense: %d vs %d", r.Regime, faulted, r.WireBytes, dense.WireBytes)
			}
		}
		if !(rows[1].WireBytes > rows[2].WireBytes && rows[2].WireBytes > rows[3].WireBytes) {
			t.Fatalf("uniform widths not ordered: %d, %d, %d bytes",
				rows[1].WireBytes, rows[2].WireBytes, rows[3].WireBytes)
		}
	}
	txt := res.Render()
	if !strings.Contains(txt, "uniform-8bit") || !strings.Contains(txt, "topk-") || !strings.Contains(txt, "chaos") {
		t.Fatal("Render incomplete")
	}
}

func TestCompressionExport(t *testing.T) {
	dir := t.TempDir()
	res := &CompressionResult{Rows: []CompressionRow{{
		Regime: "uniform-8bit", Faulted: true,
		Summary:   Summary{Average: 0.9, Worst: 0.8, Variance: 1.5},
		WireBytes: 123456, BytesRatio: 0.5, Crashes: 2, MessagesLost: 3,
	}}}
	if err := res.WriteFiles(dir, "compression"); err != nil {
		t.Fatal(err)
	}
}

func TestChaosExport(t *testing.T) {
	dir := t.TempDir()
	res := &ChaosResult{Rows: []ChaosRow{{
		CrashProb: 0.1, Summary: Summary{Average: 0.9, Worst: 0.8, Variance: 1.5},
		Crashes: 4, Timeouts: 2, Retries: 1, MessagesLost: 3, SimulatedMs: 1000,
	}}}
	if err := res.WriteFiles(dir, "chaos"); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndAlgoHelpers(t *testing.T) {
	if Smoke.String() != "smoke" || Small.String() != "small" || Full.String() != "full" {
		t.Fatal("scale names")
	}
	if Scale(9).String() == "" {
		t.Fatal("unknown scale must print")
	}
	if !HierMinimax.Minimax() || !HierMinimax.Hierarchical() {
		t.Fatal("HierMinimax classification")
	}
	if FedAvg.Minimax() || FedAvg.Hierarchical() {
		t.Fatal("FedAvg classification")
	}
	if !DRFA.Minimax() || DRFA.Hierarchical() {
		t.Fatal("DRFA classification")
	}
}

func TestConvergenceRateShape(t *testing.T) {
	res, err := ConvergenceRate(nil, Smoke, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points: %d", len(res.Points))
	}
	// The gap must shrink with the horizon (Theorem 1's headline), and
	// the fitted slope must be clearly negative and in the ballpark of
	// the predicted T^{-1/2}.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].DualityGap >= res.Points[i-1].DualityGap {
			t.Fatalf("gap not decreasing: %v", res.Points)
		}
	}
	if res.FittedSlope > -0.2 {
		t.Fatalf("fitted slope %v too shallow for alpha=0", res.FittedSlope)
	}
	if res.PredictedSlope != -0.5 {
		t.Fatalf("predicted slope %v", res.PredictedSlope)
	}
	if !strings.Contains(res.Render(), "fitted log-log slope") {
		t.Fatal("render incomplete")
	}
}

func TestFitLogLogSlope(t *testing.T) {
	// Exact power law gap = T^{-0.5}.
	pts := []RatePoint{
		{T: 100, DualityGap: 0.1},
		{T: 10000, DualityGap: 0.01},
	}
	if got := fitLogLogSlope(pts); got < -0.5001 || got > -0.4999 {
		t.Fatalf("slope = %v", got)
	}
	if fitLogLogSlope(pts[:1]) != 0 {
		t.Fatal("degenerate fit should be 0")
	}
}

func TestRateExport(t *testing.T) {
	dir := t.TempDir()
	res := &RateResult{Alpha: 0, PredictedSlope: -0.5, FittedSlope: -0.4,
		Points: []RatePoint{{T: 10, Rounds: 10, DualityGap: 0.5, CloudRounds: 40}}}
	if err := res.WriteFiles(dir, "rates"); err != nil {
		t.Fatal(err)
	}
}

func TestRunAlgorithmUnknown(t *testing.T) {
	if _, err := runAlgorithm("bogus", nil, configFor(convexSetup(Smoke, 1).Base, FedAvg)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSustainedCrossing(t *testing.T) {
	s := Series{
		Rounds: []int{0, 10, 20, 30, 40},
		Worst:  []float64{0, 0.8, 0.4, 0.8, 0.9},
	}
	// The spike at round 10 does not count; the sustained crossing is 30.
	if got := sustainedCrossing(s, 0.7); got != 30 {
		t.Fatalf("crossing = %d, want 30", got)
	}
	// Final-snapshot crossing counts.
	s2 := Series{Rounds: []int{0, 10}, Worst: []float64{0, 0.9}}
	if got := sustainedCrossing(s2, 0.7); got != 10 {
		t.Fatalf("crossing = %d, want 10", got)
	}
	// Never reached.
	if got := sustainedCrossing(s, 0.95); got != 0 {
		t.Fatalf("crossing = %d, want 0", got)
	}
}

func TestStationarityShape(t *testing.T) {
	res, err := Stationarity(nil, Smoke, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points: %d", len(res.Points))
	}
	// Theorem 2's headline: the stationarity measure decays along
	// training (allowing for stochastic wiggle, first vs last must drop
	// substantially).
	if res.Last >= res.First*0.8 {
		t.Fatalf("Moreau surrogate did not decay: %v -> %v", res.First, res.Last)
	}
	for _, p := range res.Points {
		if p.MoreauGradSq < 0 {
			t.Fatalf("negative squared norm at round %d", p.Round)
		}
	}
	if !strings.Contains(res.Render(), "Theorem 2") {
		t.Fatal("render incomplete")
	}
}

func TestStationarityExport(t *testing.T) {
	dir := t.TempDir()
	res := &StationarityResult{Points: []StationarityPoint{{Round: 10, MoreauGradSq: 0.5, Worst: 0.3}}}
	if err := res.WriteFiles(dir, "stat"); err != nil {
		t.Fatal(err)
	}
}
