package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// ChaosRow is one crash rate's outcome in the fault-tolerance sweep.
type ChaosRow struct {
	CrashProb float64
	Summary
	// Fault activity observed by the run.
	Crashes, Timeouts, Retries, MessagesLost int64
	// SimulatedMs is the modeled wall-clock time; timeout charges make
	// it grow with the crash rate.
	SimulatedMs float64
}

// ChaosResult is the worst-group-accuracy-vs-crash-rate table: how
// gracefully minimax fairness degrades when clients actually fail
// mid-training instead of participating politely.
type ChaosResult struct {
	Rows []ChaosRow
}

// chaosRates is the swept client crash-probability grid.
var chaosRates = []float64{0, 0.05, 0.1, 0.2, 0.3}

// ChaosSweep trains HierMinimax on the simnet engine under increasing
// client crash rates (with link loss and one retransmission riding
// along, as real deployments would have) and records the fairness
// outcome at each rate. All rates share one fault seed, so the crash
// sets are nested: raising the probability only adds faults. Each rate
// is an independent scheduler job over the shared cached workload.
func ChaosSweep(pool *sched.Pool, scale Scale, seed uint64) (*ChaosResult, error) {
	rows, err := sched.Map(pool, "chaos", len(chaosRates), func(i int) (ChaosRow, error) {
		rate := chaosRates[i]
		setup := convexSetup(scale, seed)
		prob := fl.NewProblem(setup.Fed, setup.Model.Clone())
		cfg := setup.Base
		var opts []simnet.Option
		if rate > 0 {
			opts = append(opts, simnet.WithChaos(&chaos.Schedule{
				Seed:       seed + 7919,
				CrashProb:  rate,
				LossProb:   rate / 5,
				MaxRetries: 1,
			}))
		}
		out, stats, err := simnet.HierMinimax(prob, cfg, opts...)
		if err != nil {
			return ChaosRow{}, fmt.Errorf("experiments: chaos sweep at crash=%.2f: %w", rate, err)
		}
		f := out.History.Final().Fair
		return ChaosRow{
			CrashProb:    rate,
			Summary:      Summary{Average: f.Average, Worst: f.Worst, Variance: f.Variance},
			Crashes:      stats.Crashes,
			Timeouts:     stats.Timeouts,
			Retries:      stats.Retries,
			MessagesLost: stats.MessagesLost,
			SimulatedMs:  stats.SimulatedMs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ChaosResult{Rows: rows}, nil
}

// Render prints the fault-tolerance table.
func (c *ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Fault tolerance (HierMinimax, simnet engine, convex workload) ==\n")
	fmt.Fprintf(&b, "%9s %9s %9s %10s %9s %9s %9s %10s %10s\n",
		"crash", "average", "worst", "variance", "crashes", "timeouts", "retries", "lost", "simSec")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%9.2f %9.4f %9.4f %10.4f %9d %9d %9d %10d %10.1f\n",
			r.CrashProb, r.Average, r.Worst, r.Variance,
			r.Crashes, r.Timeouts, r.Retries, r.MessagesLost, r.SimulatedMs/1000)
	}
	return b.String()
}

// WriteFiles writes the sweep rows as CSV and JSON.
func (c *ChaosResult) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		rows = append(rows, []string{
			ftoa(r.CrashProb), ftoa(r.Average), ftoa(r.Worst), ftoa(r.Variance),
			strconv.FormatInt(r.Crashes, 10), strconv.FormatInt(r.Timeouts, 10),
			strconv.FormatInt(r.Retries, 10), strconv.FormatInt(r.MessagesLost, 10),
			ftoa(r.SimulatedMs),
		})
	}
	if err := writeCSV(filepath.Join(dir, base+".csv"),
		[]string{"crash_prob", "average", "worst", "variance", "crashes", "timeouts", "retries", "messages_lost", "simulated_ms"}, rows); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, base+".json"), c)
}
