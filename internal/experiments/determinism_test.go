package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sched"
)

// snapshotArtifact captures everything an experiment publishes: the
// rendered text plus the exact bytes of every exported file (CSV, JSON,
// SVG).
func snapshotArtifact(t *testing.T, a Artifact) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	if err := a.WriteFiles(dir, "out"); err != nil {
		t.Fatal(err)
	}
	snap := map[string][]byte{"render.txt": []byte(a.Render())}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = b
	}
	return snap
}

// TestArtifactsIdenticalAcrossWorkerCounts is the scheduler's ordering
// contract, end to end: every experiment artifact — CSV bytes, manifest
// JSON, rendered tables, SVG panels — is bitwise identical whether the
// sweep runs sequentially (-jobs 1), on 4 workers, or on an
// intentionally awkward 13 workers. The chaos sweep is included, so the
// contract holds under fault injection too.
func TestArtifactsIdenticalAcrossWorkerCounts(t *testing.T) {
	drivers := []struct {
		name string
		run  func(p *sched.Pool) (Artifact, error)
	}{
		{"fig3", func(p *sched.Pool) (Artifact, error) { return Fig3(p, Smoke, 42) }},
		{"fig4", func(p *sched.Pool) (Artifact, error) { return Fig4(p, Smoke, 42) }},
		{"table2", func(p *sched.Pool) (Artifact, error) { return Table2(p, Smoke, 42) }},
		{"table1", func(p *sched.Pool) (Artifact, error) { return Tradeoff(p, Smoke, 42) }},
		{"rates", func(p *sched.Pool) (Artifact, error) { return ConvergenceRate(p, Smoke, 0.5, 42) }},
		{"stationarity", func(p *sched.Pool) (Artifact, error) { return Stationarity(p, Smoke, 42) }},
		{"ablations", func(p *sched.Pool) (Artifact, error) { return Ablations(p, Smoke, 42) }},
		{"chaos", func(p *sched.Pool) (Artifact, error) { return ChaosSweep(p, Smoke, 42) }},
		// The compression sweep rides the same contract: compressed-uplink
		// runs (both legs, including the chaos-faulted one) must produce
		// bitwise-identical artifacts at any worker count.
		{"compression", func(p *sched.Pool) (Artifact, error) { return CompressionSweep(p, Smoke, 42) }},
	}
	workerCounts := []int{1, 4, 13}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			var ref map[string][]byte
			for _, workers := range workerCounts {
				var pool *sched.Pool // workers == 1 exercises the nil inline path
				if workers > 1 {
					pool = sched.New(workers)
				}
				art, err := d.run(pool)
				if err != nil {
					t.Fatalf("jobs=%d: %v", workers, err)
				}
				snap := snapshotArtifact(t, art)
				if ref == nil {
					ref = snap
					continue
				}
				if len(snap) != len(ref) {
					t.Fatalf("jobs=%d produced %d files, sequential produced %d", workers, len(snap), len(ref))
				}
				for name, want := range ref {
					got, ok := snap[name]
					if !ok {
						t.Fatalf("jobs=%d missing artifact %s", workers, name)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("artifact %s differs between -jobs 1 and -jobs %d (%d vs %d bytes)", name, workers, len(want), len(got))
					}
				}
			}
		})
	}
}
