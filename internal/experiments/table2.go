package experiments

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sched"
)

// Table2Row is one (dataset, method) cell group of Table 2.
type Table2Row struct {
	Dataset  string
	Method   AlgorithmName
	Average  float64
	Worst    float64 // worst-10% for Synthetic, per §6.3
	Variance float64
}

// Table2Result reproduces Table 2: HierFAvg vs HierMinimax on five
// datasets, reporting average / worst / variance of per-area accuracy.
type Table2Result struct {
	Rows []Table2Row
}

// table2Workload is one dataset row's setup.
type table2Workload struct {
	name      string
	fed       *data.Federation
	model     model.Model
	cfg       fl.Config
	worstFrac float64 // 1.0 = plain worst; 0.1 = worst-10% (Synthetic)
}

// table2Builders returns one constructor per Table 2 dataset, in row
// order. Each scheduler job invokes its own builder so jobs stay pure;
// the shared-dataset cache collapses the duplicate generation work
// (five datasets x two algorithms = ten jobs, five distinct corpora).
// Learning rates follow §6.1/§6.3 scaled to the run length.
func table2Builders(scale Scale, seed uint64) []func() table2Workload {
	p := convexParamsFor(scale)
	base := p.base(seed)
	var out []func() table2Workload

	// Three image datasets, logistic regression, one class per area.
	for _, prof := range []data.ImageProfile{data.EMNISTDigitsLike(), data.FashionMNISTLike(), data.MNISTLike()} {
		profile := prof
		profile.Dim = p.dim
		out = append(out, func() table2Workload {
			train, test := profile.GenerateShared(p.perTrain, p.perTest, seed)
			fed := data.OneClassPerArea(train, test, 3, seed+1)
			return table2Workload{
				name:      profile.Name,
				fed:       fed,
				model:     model.NewLinear(p.dim, profile.Classes),
				cfg:       base,
				worstFrac: 1,
			}
		})
	}

	// Adult: 2 edge areas (Doctorate / non-Doctorate), eta_p one decade
	// below eta_w as in §6.3.
	adultCfg := base
	adultCfg.SampledEdges = 2
	adultCfg.EtaP = p.etaP / 2
	adult := data.DefaultAdult()
	if scale == Smoke {
		adult.TrainPerArea, adult.TestPerArea = 600, 200
	}
	out = append(out, func() table2Workload {
		adultFed := data.GenerateAdultShared(adult, 3, seed+2)
		return table2Workload{
			name:      "adult",
			fed:       adultFed,
			model:     model.NewLinear(adult.InputDim(), 2),
			cfg:       adultCfg,
			worstFrac: 1,
		}
	})

	// Synthetic (Li et al.): 100 edge areas, worst-10% accuracy.
	synth := data.DefaultLiSynthetic()
	if scale == Smoke {
		synth.NumDevices, synth.MeanSamples, synth.TestPer = 30, 40, 20
	}
	synthCfg := base
	synthCfg.SampledEdges = synth.NumDevices / 4
	synthCfg.EtaW = p.etaW / 2
	synthCfg.EtaP = p.etaP / 2
	out = append(out, func() table2Workload {
		synthFed := data.GenerateLiSyntheticShared(synth, 2, seed+3)
		return table2Workload{
			name:      "synthetic",
			fed:       synthFed,
			model:     model.NewLinear(synth.Dim, synth.Classes),
			cfg:       synthCfg,
			worstFrac: 0.1,
		}
	})
	return out
}

// table2Algos is the method pair of every Table 2 row group.
var table2Algos = []AlgorithmName{HierFAvg, HierMinimax}

// Table2 runs HierFAvg and HierMinimax on all five datasets. The ten
// (dataset, method) cells are independent scheduler jobs, flattened
// workload-major so the committed row order matches the sequential
// nesting exactly.
func Table2(pool *sched.Pool, scale Scale, seed uint64) (*Table2Result, error) {
	builders := table2Builders(scale, seed)
	n := len(builders) * len(table2Algos)
	rows, err := sched.Map(pool, "table2", n, func(i int) (Table2Row, error) {
		w := builders[i/len(table2Algos)]()
		algo := table2Algos[i%len(table2Algos)]
		prob := fl.NewProblem(w.fed, w.model.Clone())
		out, err := runAlgorithm(algo, prob, w.cfg)
		if err != nil {
			return Table2Row{}, fmt.Errorf("experiments: table2 %s/%s: %w", w.name, algo, err)
		}
		final := out.History.Final()
		worst := final.Fair.Worst
		if w.worstFrac < 1 {
			worst = metrics.WorstK(final.Areas.Accuracy, w.worstFrac)
		}
		return Table2Row{
			Dataset:  w.name,
			Method:   algo,
			Average:  final.Fair.Average,
			Worst:    worst,
			Variance: final.Fair.Variance,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows}, nil
}

// Render prints Table 2 in the paper's layout.
func (t *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 2: HierFAvg vs HierMinimax ==\n")
	fmt.Fprintf(&b, "%-22s %-13s %9s %9s %10s\n", "Dataset", "Method", "Average", "Worst", "Variance")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %-13s %9.4f %9.4f %10.4f\n", r.Dataset, string(r.Method), r.Average, r.Worst, r.Variance)
	}
	return b.String()
}

// Row returns the row for (dataset, method), or nil.
func (t *Table2Result) Row(dataset string, method AlgorithmName) *Table2Row {
	for i := range t.Rows {
		if t.Rows[i].Dataset == dataset && t.Rows[i].Method == method {
			return &t.Rows[i]
		}
	}
	return nil
}
