package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/fl"
	"repro/internal/quant"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// CompressionRow is one (regime, fault-leg) cell of the compression
// sweep: what a compressed-uplink deployment buys in bytes-on-wire and
// what it costs in worst-group accuracy.
type CompressionRow struct {
	// Regime is quant.Config.Name() of the uplink compression setting
	// ("none" for the dense reference rows).
	Regime string
	// Faulted marks the chaos leg: the same regime trained under client
	// crashes and link loss with one retransmission.
	Faulted bool
	Summary
	// WireBytes is the run's ledger total over both links (client-edge
	// and edge-cloud, uplinks and downlinks): the bytes-on-wire axis.
	// Compression shrinks only the uplinks, so the ratio floor is set by
	// the dense downlink broadcasts.
	WireBytes int64
	// BytesRatio is WireBytes over the dense reference run of the same
	// fault leg (1 for the reference rows themselves).
	BytesRatio float64
	// Fault activity observed by the run (zero on the clean leg).
	Crashes, MessagesLost int64
}

// CompressionResult is the worst-group-accuracy-vs-bytes-on-wire table:
// the communication–computation trade-off the hierarchical design
// targets, priced with the exact compressed wire sizes the ledger
// charges. Rows come in two legs — clean and chaos-faulted — so the
// table also shows that compression composes with fault injection.
type CompressionResult struct {
	Rows []CompressionRow
}

// compressionGrid is the swept regime ladder for a d-dimensional model:
// the dense reference, the three uniform quantization widths (int16,
// int8 and the sub-byte 4-bit grid), and top-k sparsification with
// error feedback keeping 1/16 of the coordinates.
func compressionGrid(d int) []quant.Config {
	k := d / 16
	if k < 1 {
		k = 1
	}
	return []quant.Config{
		{}, // dense reference
		{Bits: 16},
		{Bits: 8},
		{Bits: 4},
		{TopK: k, ErrorFeedback: true},
	}
}

// compressionRegimes is the grid size (rows per fault leg).
const compressionRegimes = 5

// CompressionSweep trains HierMinimax on the simnet engine under each
// uplink-compression regime, twice: once clean and once under a chaos
// schedule (client crashes plus link loss with one retransmission), and
// records the fairness outcome against the exact bytes that crossed the
// wire. Every run is an independent scheduler job over the shared
// cached workload, deterministic from the spec alone, so the artifact
// is bitwise identical for any -jobs value.
func CompressionSweep(pool *sched.Pool, scale Scale, seed uint64) (*CompressionResult, error) {
	rows, err := sched.Map(pool, "compression", compressionRegimes*2, func(i int) (CompressionRow, error) {
		faulted := i >= compressionRegimes
		setup := convexSetup(scale, seed)
		prob := fl.NewProblem(setup.Fed, setup.Model.Clone())
		cfg := setup.Base
		comp := compressionGrid(prob.Model.Dim())[i%compressionRegimes]
		cfg.Compression = comp
		var opts []simnet.Option
		if faulted {
			opts = append(opts, simnet.WithChaos(&chaos.Schedule{
				Seed:       seed + 7919,
				CrashProb:  0.1,
				LossProb:   0.02,
				MaxRetries: 1,
			}))
		}
		out, stats, err := simnet.HierMinimax(prob, cfg, opts...)
		if err != nil {
			return CompressionRow{}, fmt.Errorf("experiments: compression sweep %s (faulted=%v): %w", comp.Name(), faulted, err)
		}
		f := out.History.Final().Fair
		return CompressionRow{
			Regime:       comp.Name(),
			Faulted:      faulted,
			Summary:      Summary{Average: f.Average, Worst: f.Worst, Variance: f.Variance},
			WireBytes:    out.Ledger.Bytes[topology.ClientEdge] + out.Ledger.Bytes[topology.EdgeCloud],
			Crashes:      stats.Crashes,
			MessagesLost: stats.MessagesLost,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// Price each row against the dense reference of its own fault leg
	// (row 0 of the leg); under faults both numerator and denominator
	// saw the same deterministic fault schedule.
	for i := range rows {
		dense := rows[(i/compressionRegimes)*compressionRegimes]
		rows[i].BytesRatio = float64(rows[i].WireBytes) / float64(dense.WireBytes)
	}
	return &CompressionResult{Rows: rows}, nil
}

// Render prints the accuracy-vs-bytes table, clean leg first.
func (c *CompressionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Compression (HierMinimax, simnet engine, convex workload) ==\n")
	fmt.Fprintf(&b, "%-14s %7s %9s %9s %10s %10s %7s %9s %9s\n",
		"regime", "faults", "average", "worst", "variance", "wireMB", "ratio", "crashes", "lost")
	for _, r := range c.Rows {
		leg := "clean"
		if r.Faulted {
			leg = "chaos"
		}
		fmt.Fprintf(&b, "%-14s %7s %9.4f %9.4f %10.4f %10.2f %7.3f %9d %9d\n",
			r.Regime, leg, r.Average, r.Worst, r.Variance,
			float64(r.WireBytes)/1e6, r.BytesRatio, r.Crashes, r.MessagesLost)
	}
	return b.String()
}

// WriteFiles writes the sweep rows as CSV and JSON.
func (c *CompressionResult) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.Regime, strconv.FormatBool(r.Faulted),
			ftoa(r.Average), ftoa(r.Worst), ftoa(r.Variance),
			strconv.FormatInt(r.WireBytes, 10), ftoa(r.BytesRatio),
			strconv.FormatInt(r.Crashes, 10), strconv.FormatInt(r.MessagesLost, 10),
		})
	}
	if err := writeCSV(filepath.Join(dir, base+".csv"),
		[]string{"regime", "faulted", "average", "worst", "variance", "wire_bytes", "bytes_ratio", "crashes", "messages_lost"}, rows); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, base+".json"), c)
}
