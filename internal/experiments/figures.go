package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/sched"
)

// Series is one algorithm's accuracy trajectory: the data behind one
// curve of Fig. 3 or Fig. 4.
type Series struct {
	Algorithm   AlgorithmName
	Rounds      []int   // training rounds at each snapshot
	CloudRounds []int64 // cumulative cloud-link rounds
	Average     []float64
	Worst       []float64
}

// FigResult is one figure reproduction: all five curves plus the
// rounds-to-target headline comparison the paper reports in prose.
type FigResult struct {
	Name        string
	Series      []Series
	TargetWorst float64
	// ToTarget[algo] is the first training round whose worst accuracy
	// reaches TargetWorst (0 = never reached within the run).
	ToTarget map[AlgorithmName]int
	// Final holds each algorithm's last-snapshot summary.
	Final map[AlgorithmName]Summary
}

// Summary is the (average, worst, variance) triple of §6.
type Summary struct {
	Average, Worst, Variance float64
}

// runAlgorithm dispatches to the right engine.
func runAlgorithm(algo AlgorithmName, prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	switch algo {
	case FedAvg:
		return baselines.FedAvg(prob, cfg)
	case StochasticAFL:
		return baselines.StochasticAFL(prob, cfg)
	case DRFA:
		return baselines.DRFA(prob, cfg)
	case HierFAvg:
		return baselines.HierFAvg(prob, cfg)
	case HierMinimax:
		return core.HierMinimax(prob, cfg)
	}
	return nil, fmt.Errorf("experiments: unknown algorithm %q", algo)
}

// AllAlgorithms lists the five methods in the paper's presentation order.
var AllAlgorithms = []AlgorithmName{FedAvg, StochasticAFL, DRFA, HierFAvg, HierMinimax}

// figRun is one algorithm's committed result within a figure sweep.
type figRun struct {
	series   Series
	toTarget int
	final    Summary
	name     string
	target   float64
}

// RunFigure runs every algorithm on the workload and assembles the
// figure data. Each run is one scheduler job that builds its own setup
// via build (dataset construction dedupes through the internal/data
// cache, so concurrent jobs share one immutable corpus); results commit
// in algos order, so the artifact is identical for any worker count.
func RunFigure(pool *sched.Pool, build func() FigSetup, algos []AlgorithmName) (*FigResult, error) {
	runs, err := sched.Map(pool, "figure", len(algos), func(i int) (figRun, error) {
		setup := build()
		algo := algos[i]
		prob := fl.NewProblem(setup.Fed, setup.Model.Clone())
		cfg := configFor(setup.Base, algo)
		out, err := runAlgorithm(algo, prob, cfg)
		if err != nil {
			return figRun{}, fmt.Errorf("experiments: %s on %s: %w", algo, setup.Name, err)
		}
		s := Series{Algorithm: algo}
		for _, snap := range out.History.Snapshots {
			s.Rounds = append(s.Rounds, snap.Round)
			s.CloudRounds = append(s.CloudRounds, snap.CloudRounds())
			s.Average = append(s.Average, snap.Fair.Average)
			s.Worst = append(s.Worst, snap.Fair.Worst)
		}
		f := out.History.Final().Fair
		return figRun{
			series:   s,
			toTarget: sustainedCrossing(s, setup.TargetWorst),
			final:    Summary{Average: f.Average, Worst: f.Worst, Variance: f.Variance},
			name:     setup.Name,
			target:   setup.TargetWorst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &FigResult{
		ToTarget: make(map[AlgorithmName]int),
		Final:    make(map[AlgorithmName]Summary),
	}
	for i, r := range runs {
		res.Name, res.TargetWorst = r.name, r.target
		res.Series = append(res.Series, r.series)
		res.ToTarget[algos[i]] = r.toTarget
		res.Final[algos[i]] = r.final
	}
	return res, nil
}

// SetupFig3 exposes the Fig. 3 workload construction (used by the bench
// harness to run one algorithm at a time).
func SetupFig3(scale Scale, seed uint64) FigSetup { return convexSetup(scale, seed) }

// SetupFig4 exposes the Fig. 4 workload construction.
func SetupFig4(scale Scale, seed uint64) FigSetup { return nonConvexSetup(scale, seed) }

// sustainedCrossing returns the first round whose worst accuracy reaches
// target AND stays there at the following snapshot (a single noisy spike
// above the target does not count), or 0 if never reached. The final
// snapshot counts without a successor.
func sustainedCrossing(s Series, target float64) int {
	for i := 1; i < len(s.Rounds); i++ {
		if s.Worst[i] < target {
			continue
		}
		if i == len(s.Rounds)-1 || s.Worst[i+1] >= target {
			return s.Rounds[i]
		}
	}
	return 0
}

// Fig3 reproduces Figure 3 (convex loss, EMNIST-Digits substitute).
func Fig3(pool *sched.Pool, scale Scale, seed uint64) (*FigResult, error) {
	return RunFigure(pool, func() FigSetup { return convexSetup(scale, seed) }, AllAlgorithms)
}

// Fig4 reproduces Figure 4 (non-convex loss, Fashion-MNIST substitute).
func Fig4(pool *sched.Pool, scale Scale, seed uint64) (*FigResult, error) {
	return RunFigure(pool, func() FigSetup { return nonConvexSetup(scale, seed) }, AllAlgorithms)
}

// Fig3Population runs the Fig. 3 comparison with each round's clients
// drawn from a sparse registered population instead of the resident
// N_E x N0 roster: population clients exist as (seed, edge) records and
// samplePerRound of them materialize per round. Artifacts remain
// bitwise identical for any -jobs worker count, exactly like Fig3.
func Fig3Population(pool *sched.Pool, scale Scale, seed uint64, population, samplePerRound int) (*FigResult, error) {
	return RunFigure(pool, func() FigSetup {
		return convexSetup(scale, seed).WithPopulation(population, samplePerRound)
	}, AllAlgorithms)
}

// Fig4Population is Fig4 under the sparse-population regime.
func Fig4Population(pool *sched.Pool, scale Scale, seed uint64, population, samplePerRound int) (*FigResult, error) {
	return RunFigure(pool, func() FigSetup {
		return nonConvexSetup(scale, seed).WithPopulation(population, samplePerRound)
	}, AllAlgorithms)
}

// Render prints the figure data as aligned text: one block per curve
// plus the rounds-to-target summary, mirroring how §6.1/§6.2 report the
// result.
func (r *FigResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n%s (round: average / worst)\n", s.Algorithm)
		for i := range s.Rounds {
			fmt.Fprintf(&b, "  %6d: %.4f / %.4f\n", s.Rounds[i], s.Average[i], s.Worst[i])
		}
	}
	fmt.Fprintf(&b, "\nRounds to reach %.0f%% worst accuracy:\n", 100*r.TargetWorst)
	algos := make([]AlgorithmName, 0, len(r.ToTarget))
	for a := range r.ToTarget {
		algos = append(algos, a)
	}
	sort.Slice(algos, func(i, j int) bool { return algos[i] < algos[j] })
	hmm := r.ToTarget[HierMinimax]
	for _, a := range algos {
		v := r.ToTarget[a]
		if v == 0 {
			fmt.Fprintf(&b, "  %-14s not reached\n", a)
			continue
		}
		if a != HierMinimax && hmm > 0 {
			fmt.Fprintf(&b, "  %-14s %6d  (HierMinimax reduction: %.0f%%)\n", a, v, 100*(1-float64(hmm)/float64(v)))
		} else {
			fmt.Fprintf(&b, "  %-14s %6d\n", a, v)
		}
	}
	fmt.Fprintf(&b, "\nFinal (average / worst / variance):\n")
	for _, a := range algos {
		f := r.Final[a]
		fmt.Fprintf(&b, "  %-14s %.4f / %.4f / %.4f\n", a, f.Average, f.Worst, f.Variance)
	}
	return b.String()
}
