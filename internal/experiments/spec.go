// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Fig. 3 (convex comparison), Fig. 4 (non-convex
// comparison), Table 2 (HierFAvg vs HierMinimax fairness across five
// datasets), and an empirical companion to Table 1 (the
// communication/convergence trade-off of §5). Each experiment has a
// scale knob so the same harness drives fast benchmark runs and the full
// recorded reproduction.
package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/model"
)

// Scale selects the experiment size.
type Scale int

// Scales. Smoke is for tests and testing.B benches (seconds); Small is
// the recorded reproduction scale (minutes on one core); Full approaches
// the paper's round counts (hours) and is available from the CLI.
const (
	Smoke Scale = iota
	Small
	Full
)

func (s Scale) String() string {
	switch s {
	case Smoke:
		return "smoke"
	case Small:
		return "small"
	case Full:
		return "full"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// AlgorithmName identifies one of the five methods.
type AlgorithmName string

// The five §6 methods.
const (
	FedAvg        AlgorithmName = "FedAvg"
	StochasticAFL AlgorithmName = "Stochastic-AFL"
	DRFA          AlgorithmName = "DRFA"
	HierFAvg      AlgorithmName = "HierFAvg"
	HierMinimax   AlgorithmName = "HierMinimax"
)

// MinimaxMethods reports whether the algorithm solves the minimax
// problem (3) rather than the minimization problem (1).
func (a AlgorithmName) Minimax() bool {
	return a == StochasticAFL || a == DRFA || a == HierMinimax
}

// Hierarchical reports whether the algorithm uses the edge layer.
func (a AlgorithmName) Hierarchical() bool {
	return a == HierFAvg || a == HierMinimax
}

// FigSetup bundles everything one comparison figure needs.
type FigSetup struct {
	Name        string
	Fed         *data.Federation
	Model       model.Model
	Base        fl.Config // per-algorithm Tau fields are overridden
	TargetWorst float64   // worst-accuracy target for the headline table
}

// WithPopulation switches a figure setup to the sparse-population
// regime: each edge area registers population/N_E virtual clients and
// the engines sample samplePerRound of them per round via the
// deterministic roster (internal/population), streaming the cohort
// aggregation so memory stays O(sampled). The workload name records the
// population size so artifacts from different regimes never collide.
func (s FigSetup) WithPopulation(population, samplePerRound int) FigSetup {
	s.Base.Population = population
	s.Base.SamplePerRound = samplePerRound
	s.Name = fmt.Sprintf("%s-pop%d", s.Name, population)
	return s
}

// convexSetup builds the Fig. 3 workload: logistic regression on the
// EMNIST-Digits substitute, one class per edge area, N_E=10, N0=3,
// m_E=5, tau1=tau2=2 for hierarchical methods (§6.1).
// convexParams are the scale-dependent knobs shared by the convex
// experiments (Fig. 3, Table 2, ablations).
type convexParams struct {
	dim, perTrain, perTest, rounds, evalEvery int
	etaW, etaP                                float64
}

func convexParamsFor(scale Scale) convexParams {
	switch scale {
	case Smoke:
		return convexParams{48, 400, 150, 600, 25, 0.01, 0.001}
	case Small:
		return convexParams{784, 2000, 150, 6000, 200, 0.002, 0.0003}
	default: // Full
		return convexParams{784, 4000, 300, 20000, 250, 0.001, 0.0001}
	}
}

func (p convexParams) base(seed uint64) fl.Config {
	return fl.Config{
		Rounds: p.rounds, Tau1: 2, Tau2: 2,
		EtaW: p.etaW, EtaP: p.etaP,
		BatchSize: 4, LossBatch: 16,
		SampledEdges: 5, Seed: seed, EvalEvery: p.evalEvery,
	}
}

func convexSetup(scale Scale, seed uint64) FigSetup {
	p := convexParamsFor(scale)
	profile := data.EMNISTDigitsLike()
	profile.Dim = p.dim
	train, test := profile.GenerateShared(p.perTrain, p.perTest, seed)
	fed := data.OneClassPerArea(train, test, 3, seed+1)
	return FigSetup{
		Name:        "fig3-convex-emnist",
		Fed:         fed,
		Model:       model.NewLinear(p.dim, profile.Classes),
		Base:        p.base(seed),
		TargetWorst: targetFor(scale, 0.75, 0.70, 0.75),
	}
}

// nonConvexSetup builds the Fig. 4 workload: the 300-100 MLP on the
// Fashion-MNIST substitute with s=50% similarity, N_E=10, N0=3, m_E=2
// (§6.2).
func nonConvexSetup(scale Scale, seed uint64) FigSetup {
	var perTrain, perTest, rounds, evalEvery, testPerArea int
	var etaW, etaP float64
	var dim, h1, h2 int
	switch scale {
	case Smoke:
		// Small-capacity MLP on 48-dim downscales: the underparameterized
		// regime where the minimax effect is strongest (see DESIGN.md).
		dim, h1, h2 = 48, 24, 12
		perTrain, perTest, rounds, evalEvery, testPerArea = 400, 100, 600, 25, 200
		etaW, etaP = 0.01, 0.001
	case Small:
		// 14x14 downscale with the paper's 300-100 architecture; enough
		// training data per class that the MLP cannot interpolate (the
		// regime real Fashion-MNIST sits in with 6000 samples per class).
		dim, h1, h2 = 196, 300, 100
		perTrain, perTest, rounds, evalEvery, testPerArea = 3000, 150, 1500, 50, 400
		etaW, etaP = 0.01, 0.002
	default: // Full
		dim, h1, h2 = 784, 300, 100
		perTrain, perTest, rounds, evalEvery, testPerArea = 6000, 200, 50000, 500, 600
		etaW, etaP = 0.001, 0.0001
	}
	profile := data.FashionMNISTLike()
	profile.Dim = dim
	train, test := profile.GenerateShared(perTrain, perTest, seed)
	fed := data.Similarity(train, test, 10, 3, 0.5, testPerArea, seed+1)
	return FigSetup{
		Name:  "fig4-nonconvex-fashion",
		Fed:   fed,
		Model: model.NewMLP(dim, h1, h2, profile.Classes),
		Base: fl.Config{
			Rounds: rounds, Tau1: 2, Tau2: 2,
			EtaW: etaW, EtaP: etaP,
			BatchSize: 8, LossBatch: 16,
			SampledEdges: 2, Seed: seed, EvalEvery: evalEvery,
		},
		TargetWorst: targetFor(scale, 0.45, 0.50, 0.50),
	}
}

func targetFor(scale Scale, smoke, small, full float64) float64 {
	switch scale {
	case Smoke:
		return smoke
	case Small:
		return small
	default:
		return full
	}
}

// configFor specializes the base config for one algorithm: two-layer
// methods get Tau2=1 and Stochastic-AFL additionally Tau1=1 (its
// single-step update), exactly the §6 protocol ("we set tau1=2 ... and
// tau2=2 for methods utilizing hierarchical architectures").
func configFor(base fl.Config, algo AlgorithmName) fl.Config {
	cfg := base
	switch algo {
	case StochasticAFL:
		cfg.Tau1, cfg.Tau2 = 1, 1
	case FedAvg, DRFA:
		cfg.Tau2 = 1
	}
	return cfg
}
