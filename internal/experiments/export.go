package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/plot"
)

// Artifact is anything the harness can render as text and export as
// structured files for plotting.
type Artifact interface {
	Render() string
	// WriteFiles writes the artifact's CSV/JSON files under dir using
	// the given base name.
	WriteFiles(dir, base string) error
}

var (
	_ Artifact = (*FigResult)(nil)
	_ Artifact = (*Table2Result)(nil)
	_ Artifact = (*TradeoffResult)(nil)
	_ Artifact = (*AblationResult)(nil)
	_ Artifact = (*ChaosResult)(nil)
	_ Artifact = (*CompressionResult)(nil)
)

// writeCSV creates path and streams rows through a csv.Writer.
func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// writeJSON marshals v indented into path.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteFiles writes <base>.csv (long-format curves: algorithm, round,
// cloud_rounds, average, worst) and <base>.json (full structure).
func (r *FigResult) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, 64)
	for _, s := range r.Series {
		for i := range s.Rounds {
			rows = append(rows, []string{
				string(s.Algorithm),
				strconv.Itoa(s.Rounds[i]),
				strconv.FormatInt(s.CloudRounds[i], 10),
				ftoa(s.Average[i]),
				ftoa(s.Worst[i]),
			})
		}
	}
	if err := writeCSV(filepath.Join(dir, base+".csv"),
		[]string{"algorithm", "round", "cloud_rounds", "average", "worst"}, rows); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, base+".json"), r); err != nil {
		return err
	}
	// Figure SVGs: the average- and worst-accuracy panels of the paper's
	// two-panel figures.
	for _, panel := range []struct {
		suffix, title string
		pick          func(Series) []float64
	}{
		{"-average", "average test accuracy", func(s Series) []float64 { return s.Average }},
		{"-worst", "worst test accuracy", func(s Series) []float64 { return s.Worst }},
	} {
		chart := &plot.Chart{
			Title:  r.Name + ": " + panel.title,
			XLabel: "training rounds",
			YLabel: panel.title,
			YFixed: true, YMin: 0, YMax: 1,
		}
		for _, s := range r.Series {
			xs := make([]float64, len(s.Rounds))
			for i, v := range s.Rounds {
				xs[i] = float64(v)
			}
			chart.Series = append(chart.Series, plot.Series{
				Name: string(s.Algorithm), X: xs, Y: panel.pick(s),
			})
		}
		f, err := os.Create(filepath.Join(dir, base+panel.suffix+".svg"))
		if err != nil {
			return err
		}
		if err := chart.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteFiles writes the Table-2 rows as CSV and JSON.
func (t *Table2Result) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Dataset, string(r.Method), ftoa(r.Average), ftoa(r.Worst), ftoa(r.Variance),
		})
	}
	if err := writeCSV(filepath.Join(dir, base+".csv"),
		[]string{"dataset", "method", "average", "worst", "variance"}, rows); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, base+".json"), t)
}

// WriteFiles writes the alpha sweep as CSV and JSON.
func (t *TradeoffResult) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, len(t.Points))
	for _, p := range t.Points {
		rows = append(rows, []string{
			ftoa(p.Alpha), strconv.Itoa(p.Tau1), strconv.Itoa(p.Tau2),
			strconv.Itoa(p.Rounds), strconv.FormatInt(p.CloudRounds, 10),
			ftoa(p.DualityGap), ftoa(p.FinalAvg), ftoa(p.FinalWorst),
		})
	}
	if err := writeCSV(filepath.Join(dir, base+".csv"),
		[]string{"alpha", "tau1", "tau2", "rounds", "cloud_rounds", "duality_gap", "final_avg", "final_worst"}, rows); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, base+".json"), t)
}

// WriteFiles writes the ablation rows as CSV and JSON.
func (a *AblationResult) WriteFiles(dir, base string) error {
	rows := make([][]string, 0, len(a.Rows))
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Study, r.Variant, ftoa(r.Average), ftoa(r.Worst), ftoa(r.Variance),
			strconv.FormatInt(r.CloudRounds, 10), ftoa(r.UplinkMB),
		})
	}
	if err := writeCSV(filepath.Join(dir, base+".csv"),
		[]string{"study", "variant", "average", "worst", "variance", "cloud_rounds", "uplink_mb"}, rows); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, base+".json"), a)
}

// Export renders the artifact to out and, when dir is non-empty, writes
// its files there (creating the directory).
func Export(a Artifact, out io.Writer, dir, base string) error {
	if _, err := fmt.Fprintln(out, a.Render()); err != nil {
		return err
	}
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return a.WriteFiles(dir, base)
}
