package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/optim"
	"repro/internal/sched"
)

// TradeoffPoint is one alpha on the communication/convergence curve of
// Table 1 and §5.1: tau1*tau2 ~ T^alpha local work per round, so
// edge-cloud communication is Theta(T^{1-alpha}) while the duality-gap
// bound degrades to O(1/T^{(1-alpha)/2}).
type TradeoffPoint struct {
	Alpha       float64
	Tau1, Tau2  int
	Rounds      int // K = T / (tau1*tau2)
	CloudRounds int64
	DualityGap  float64
	FinalWorst  float64
	FinalAvg    float64
}

// TradeoffResult is the empirical companion to Table 1 for HierMinimax
// with convex loss.
type TradeoffResult struct {
	TotalSlots int
	Points     []TradeoffPoint
}

// tradeoffAlphas is the swept grid of Table 1's alpha knob.
var tradeoffAlphas = []float64{0, 0.25, 0.5, 0.75}

// Tradeoff sweeps alpha at a fixed slot budget T, using the learning
// rates prescribed after Theorem 1, and measures the realized duality
// gap (Eq. 8) of the averaged iterates against the spent edge-cloud
// communication. Each alpha is an independent scheduler job; all four
// jobs draw the same corpus from the shared-dataset cache.
func Tradeoff(pool *sched.Pool, scale Scale, seed uint64) (*TradeoffResult, error) {
	var T, perTrain, perTest, dim int
	switch scale {
	case Smoke:
		T, perTrain, perTest, dim = 768, 40, 20, 32
	case Small:
		T, perTrain, perTest, dim = 8192, 120, 60, 64
	default:
		T, perTrain, perTest, dim = 65536, 300, 100, 128
	}
	profile := data.EMNISTDigitsLike()
	profile.Dim = dim

	points, err := sched.Map(pool, "tradeoff", len(tradeoffAlphas), func(i int) (TradeoffPoint, error) {
		alpha := tradeoffAlphas[i]
		train, test := profile.GenerateShared(perTrain, perTest, seed)
		fed := data.OneClassPerArea(train, test, 3, seed+1)
		tau1, tau2 := optim.TausForAlpha(T, alpha)
		rounds := T / (tau1 * tau2)
		if rounds < 1 {
			rounds = 1
		}
		lr := optim.ConvexSchedule(T, alpha, 3.0, 0.05)
		prob := fl.NewProblem(fed, model.NewLinear(dim, profile.Classes))
		cfg := fl.Config{
			Rounds: rounds, Tau1: tau1, Tau2: tau2,
			EtaW: lr.EtaW, EtaP: lr.EtaP,
			BatchSize: 4, LossBatch: 16,
			SampledEdges: 5, Seed: seed,
			TrackAverages: true,
		}
		out, err := core.HierMinimax(prob, cfg)
		if err != nil {
			return TradeoffPoint{}, fmt.Errorf("experiments: tradeoff alpha=%g: %w", alpha, err)
		}
		gap := metrics.DualityGap(prob.Model, out.WHat, out.PHat, fed, prob.W, prob.P, 200, lr.EtaW)
		final := out.History.Final().Fair
		return TradeoffPoint{
			Alpha: alpha, Tau1: tau1, Tau2: tau2, Rounds: rounds,
			CloudRounds: out.Ledger.CloudRounds(),
			DualityGap:  gap,
			FinalWorst:  final.Worst,
			FinalAvg:    final.Average,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &TradeoffResult{TotalSlots: T, Points: points}, nil
}

// Render prints the sweep as a table.
func (t *TradeoffResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 1 companion: communication/convergence trade-off (T=%d slots) ==\n", t.TotalSlots)
	fmt.Fprintf(&b, "%6s %5s %5s %7s %12s %12s %10s %10s\n",
		"alpha", "tau1", "tau2", "K", "cloudRounds", "dualityGap", "finalAvg", "finalWorst")
	for _, p := range t.Points {
		fmt.Fprintf(&b, "%6.2f %5d %5d %7d %12d %12.4f %10.4f %10.4f\n",
			p.Alpha, p.Tau1, p.Tau2, p.Rounds, p.CloudRounds, p.DualityGap, p.FinalAvg, p.FinalWorst)
	}
	return b.String()
}
