package baselines

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// StochasticAFL is the Stochastic Agnostic Federated Learning algorithm
// of Mohri, Sivek and Suresh [25]: two-layer minimax with a single local
// SGD step per round. Every round the server samples edge slots by
// p^(k), each slot's clients take one projected SGD step from w^(k), the
// server averages the returned models into w^(k+1), then updates p by
// projected gradient ascent on uniformly-sampled loss estimates of
// w^(k+1). Config.Tau1 and Config.Tau2 must both be 1.
func StochasticAFL(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	if err := requireTwoLayer("Stochastic-AFL", cfg); err != nil {
		return nil, err
	}
	if cfg.Tau1 > 1 {
		return nil, fmt.Errorf("baselines: Stochastic-AFL uses single-step updates; Tau1 must be 1, got %d", cfg.Tau1)
	}
	pool := fl.NewModelPool(prob.Model)
	var folds []cohortFold
	return fl.Run("Stochastic-AFL", prob, cfg, func(k int, st *fl.State) {
		minimaxTwoLayerRound(k, st, pool, 1, &folds)
	})
}

// DRFA is Distributionally Robust Federated Averaging (Deng, Kamani,
// Mahdavi [10]): two-layer minimax with Tau1 local SGD steps per round
// and a uniformly-random per-round checkpoint index c1 in [Tau1] at which
// the p-gradient is estimated — the two-layer special case (tau2 = 1) of
// the checkpoint mechanism. Config.Tau2 must be 1.
func DRFA(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	if err := requireTwoLayer("DRFA", cfg); err != nil {
		return nil, err
	}
	pool := fl.NewModelPool(prob.Model)
	var folds []cohortFold
	return fl.Run("DRFA", prob, cfg, func(k int, st *fl.State) {
		minimaxTwoLayerRound(k, st, pool, cfg.WithDefaults().Tau1, &folds)
	})
}

// minimaxTwoLayerRound advances one round of a two-layer minimax method
// with tau1 local steps. With tau1 = 1 it is Stochastic-AFL (the
// checkpoint after 1 step is exactly the aggregated next iterate); with
// tau1 > 1 it is DRFA. folds is caller-owned per-slot scratch for the
// population regime's streaming aggregation, reused across rounds.
func minimaxTwoLayerRound(k int, st *fl.State, pool *fl.ModelPool, tau1 int, folds *[]cohortFold) {
	cfg := &st.Cfg
	prob := st.Prob
	top := prob.Topology()
	n0 := top.ClientsPerEdge
	d := len(st.W)
	dBytes := topology.ModelBytes(d)
	kr := st.Root.ChildN('k', uint64(k))

	// Sample edge slots i.i.d. from the categorical distribution p^(k)
	// (with replacement), as Phase-1 unbiasedness requires — the same
	// deterministic draw HierMinimax makes from its own stream keys.
	slots := kr.Child(1).SampleWeighted(cfg.SampledEdges, st.P)
	c1 := 1 + kr.Child(2).Intn(tau1) // checkpoint step (DRFA); trivial for tau1=1

	if cfg.PopulationEnabled() {
		// Sparse population: each sampled slot trains its (k, edge)
		// roster cohort — the identical sampler the HierMinimax engines
		// use — and streams the cohort's models and checkpoints into
		// per-slot MeanAccumulators. The server then averages the slot
		// means (cohorts share a size, so the uniform weighting over
		// participants is preserved) and ascends p on cohort loss
		// estimates at the checkpoint average.
		roster := cfg.Roster(prob.Fed.NumAreas())
		if len(*folds) < len(slots) {
			*folds = make([]cohortFold, len(slots))
		}
		type slotOut struct {
			wSlot, chkSlot, iterSum []float64
			n                       int
		}
		outs := make([]slotOut, len(slots))
		cfg.ForEach(len(slots), func(i int) {
			e := slots[i]
			fd := &(*folds)[i]
			corpus := prob.Fed.Areas[e].Train
			fd.cohort = roster.CohortInto(fd.cohort, k, e)
			var iterSum []float64
			if cfg.TrackAverages {
				iterSum = make([]float64, d)
			}
			n := fd.run(cfg, pool, d, len(fd.cohort), cfg.TrackAverages,
				func(m model.Model, lane, c int, wf, chk, sum []float64) bool {
					shard := roster.ShardInto(fd.cohort[c], corpus, &fd.shards[lane])
					copy(wf, st.W)
					return fl.LocalSGDInto(m, wf, shard, tau1, cfg.BatchSize, cfg.EtaW, prob.W, kr.ChildN(3, uint64(i), uint64(c)), c1, sum, chk)
				}, iterSum)
			wSlot := make([]float64, d)
			fd.wAcc.FinishInto(wSlot)
			chkSlot := make([]float64, d)
			fd.chkAcc.FinishInto(chkSlot)
			outs[i] = slotOut{wSlot: wSlot, chkSlot: chkSlot, iterSum: iterSum, n: n}
		})
		nTot := 0
		wVecs := make([][]float64, len(outs))
		chkVecs := make([][]float64, len(outs))
		for i, o := range outs {
			nTot += o.n
			wVecs[i] = o.wSlot
			chkVecs[i] = o.chkSlot
			if st.WSum != nil {
				tensor.StorageAdd(st.WSum, o.iterSum)
				st.WCount += float64(tau1 * o.n)
			}
		}
		st.Ledger.RecordRound(topology.ClientCloud, nTot, dBytes)
		st.Ledger.RecordRound(topology.ClientCloud, nTot, 2*dBytes)
		tensor.AverageInto(st.W, wVecs...)
		fl.ProjectW(prob.W, st.W)
		wChk := make([]float64, d)
		tensor.AverageInto(wChk, chkVecs...)
		v := uniformLossEstimatesPop(st, pool, roster, k, wChk, kr.Child(4), topology.ClientCloud)
		ascendP(st, v, cfg.EtaP*float64(tau1))
		return
	}

	st.Ledger.RecordRound(topology.ClientCloud, len(slots)*n0, dBytes)
	type slotOut struct {
		finals, chks [][]float64
		iterSum      []float64
	}
	outs := make([]slotOut, len(slots))
	cfg.ForEach(len(slots), func(i int) {
		m := pool.Get()
		defer pool.Put(m)
		e := slots[i]
		area := prob.Fed.Areas[e]
		var iterSum []float64
		if cfg.TrackAverages {
			iterSum = make([]float64, len(st.W))
		}
		finals := make([][]float64, n0)
		chks := make([][]float64, n0)
		for c := 0; c < n0; c++ {
			r := kr.ChildN(3, uint64(i), uint64(c))
			wf, wc := fl.LocalSGD(m, st.W, area.Clients[c], tau1, cfg.BatchSize, cfg.EtaW, prob.W, r, c1, iterSum)
			finals[c] = wf
			chks[c] = wc
		}
		outs[i] = slotOut{finals: finals, chks: chks, iterSum: iterSum}
	})
	st.Ledger.RecordRound(topology.ClientCloud, len(slots)*n0, 2*dBytes)

	var finals, chks [][]float64
	for _, o := range outs {
		finals = append(finals, o.finals...)
		chks = append(chks, o.chks...)
		if st.WSum != nil {
			tensor.StorageAdd(st.WSum, o.iterSum)
			st.WCount += float64(tau1 * n0)
		}
	}
	tensor.AverageInto(st.W, finals...)
	fl.ProjectW(prob.W, st.W)
	wChk := make([]float64, len(st.W))
	tensor.AverageInto(wChk, chks...)

	// Weight update at the checkpoint model, step eta_p * tau1.
	v := uniformLossEstimates(st, pool, wChk, kr.Child(4), topology.ClientCloud)
	ascendP(st, v, cfg.EtaP*float64(tau1))
}
