package baselines

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// StochasticAFL is the Stochastic Agnostic Federated Learning algorithm
// of Mohri, Sivek and Suresh [25]: two-layer minimax with a single local
// SGD step per round. Every round the server samples edge slots by
// p^(k), each slot's clients take one projected SGD step from w^(k), the
// server averages the returned models into w^(k+1), then updates p by
// projected gradient ascent on uniformly-sampled loss estimates of
// w^(k+1). Config.Tau1 and Config.Tau2 must both be 1.
func StochasticAFL(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	if err := requireTwoLayer("Stochastic-AFL", cfg); err != nil {
		return nil, err
	}
	if cfg.Tau1 > 1 {
		return nil, fmt.Errorf("baselines: Stochastic-AFL uses single-step updates; Tau1 must be 1, got %d", cfg.Tau1)
	}
	pool := fl.NewModelPool(prob.Model)
	return fl.Run("Stochastic-AFL", prob, cfg, func(k int, st *fl.State) {
		minimaxTwoLayerRound(k, st, pool, 1)
	})
}

// DRFA is Distributionally Robust Federated Averaging (Deng, Kamani,
// Mahdavi [10]): two-layer minimax with Tau1 local SGD steps per round
// and a uniformly-random per-round checkpoint index c1 in [Tau1] at which
// the p-gradient is estimated — the two-layer special case (tau2 = 1) of
// the checkpoint mechanism. Config.Tau2 must be 1.
func DRFA(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	if err := requireTwoLayer("DRFA", cfg); err != nil {
		return nil, err
	}
	pool := fl.NewModelPool(prob.Model)
	return fl.Run("DRFA", prob, cfg, func(k int, st *fl.State) {
		minimaxTwoLayerRound(k, st, pool, cfg.WithDefaults().Tau1)
	})
}

// minimaxTwoLayerRound advances one round of a two-layer minimax method
// with tau1 local steps. With tau1 = 1 it is Stochastic-AFL (the
// checkpoint after 1 step is exactly the aggregated next iterate); with
// tau1 > 1 it is DRFA.
func minimaxTwoLayerRound(k int, st *fl.State, pool *fl.ModelPool, tau1 int) {
	cfg := &st.Cfg
	prob := st.Prob
	top := prob.Topology()
	n0 := top.ClientsPerEdge
	dBytes := topology.ModelBytes(len(st.W))
	kr := st.Root.ChildN('k', uint64(k))

	// Sample edge slots by p^(k); every client of a sampled slot
	// participates, so m = m_E * N0 clients are touched.
	slots := sampleEdgeSlotsByP(kr.Child(1), cfg.SampledEdges, st.P)
	c1 := 1 + kr.Child(2).Intn(tau1) // checkpoint step (DRFA); trivial for tau1=1

	st.Ledger.RecordRound(topology.ClientCloud, len(slots)*n0, dBytes)
	type slotOut struct {
		finals, chks [][]float64
		iterSum      []float64
	}
	outs := make([]slotOut, len(slots))
	cfg.ForEach(len(slots), func(i int) {
		m := pool.Get()
		defer pool.Put(m)
		e := slots[i]
		area := prob.Fed.Areas[e]
		var iterSum []float64
		if cfg.TrackAverages {
			iterSum = make([]float64, len(st.W))
		}
		finals := make([][]float64, n0)
		chks := make([][]float64, n0)
		for c := 0; c < n0; c++ {
			r := kr.ChildN(3, uint64(i), uint64(c))
			wf, wc := fl.LocalSGD(m, st.W, area.Clients[c], tau1, cfg.BatchSize, cfg.EtaW, prob.W, r, c1, iterSum)
			finals[c] = wf
			chks[c] = wc
		}
		outs[i] = slotOut{finals: finals, chks: chks, iterSum: iterSum}
	})
	st.Ledger.RecordRound(topology.ClientCloud, len(slots)*n0, 2*dBytes)

	var finals, chks [][]float64
	for _, o := range outs {
		finals = append(finals, o.finals...)
		chks = append(chks, o.chks...)
		if st.WSum != nil {
			tensor.StorageAdd(st.WSum, o.iterSum)
			st.WCount += float64(tau1 * n0)
		}
	}
	tensor.AverageInto(st.W, finals...)
	fl.ProjectW(prob.W, st.W)
	wChk := make([]float64, len(st.W))
	tensor.AverageInto(wChk, chks...)

	// Weight update at the checkpoint model, step eta_p * tau1.
	v := uniformLossEstimates(st, pool, wChk, kr.Child(4), topology.ClientCloud)
	ascendP(st, v, cfg.EtaP*float64(tau1))
}
