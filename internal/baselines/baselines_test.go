package baselines

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/fl/fltest"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// twoLayerConfig adapts the toy config to a two-layer method.
func twoLayerConfig(tau1 int) fl.Config {
	cfg := fltest.ToyConfig()
	cfg.Tau1 = tau1
	cfg.Tau2 = 1
	cfg.Rounds = 240 // keep total slots comparable with the toy config
	return cfg
}

func TestFedAvgLearns(t *testing.T) {
	res, err := FedAvg(fltest.ToyProblem(1), twoLayerConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if final := res.History.Final().Fair; final.Average < 0.75 {
		t.Fatalf("FedAvg reached only %v", final.Average)
	}
	// FedAvg never updates p.
	for _, v := range res.PWeights {
		if v != 0.25 {
			t.Fatalf("FedAvg moved p: %v", res.PWeights)
		}
	}
	// Two-layer: only client-cloud traffic.
	if res.Ledger.Rounds[topology.EdgeCloud] != 0 || res.Ledger.Rounds[topology.ClientEdge] != 0 {
		t.Fatal("FedAvg used three-layer links")
	}
	if res.Ledger.Rounds[topology.ClientCloud] != int64(2*240) {
		t.Fatalf("FedAvg client-cloud rounds = %d", res.Ledger.Rounds[topology.ClientCloud])
	}
}

func TestFedAvgRejectsTau2(t *testing.T) {
	cfg := twoLayerConfig(2)
	cfg.Tau2 = 2
	if _, err := FedAvg(fltest.ToyProblem(1), cfg); err == nil {
		t.Fatal("FedAvg accepted Tau2 > 1")
	}
}

func TestStochasticAFLLearnsAndMovesP(t *testing.T) {
	res, err := StochasticAFL(fltest.ToyProblem(1), twoLayerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if final := res.History.Final().Fair; final.Average < 0.7 {
		t.Fatalf("AFL reached only %v", final.Average)
	}
	moved := false
	for _, v := range res.PWeights {
		if math.Abs(v-0.25) > 1e-6 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("AFL never moved p")
	}
	if math.Abs(tensor.Sum(res.PWeights)-1) > 1e-9 {
		t.Fatalf("p not a distribution: %v", res.PWeights)
	}
}

func TestStochasticAFLRejectsMultiStep(t *testing.T) {
	if _, err := StochasticAFL(fltest.ToyProblem(1), twoLayerConfig(2)); err == nil {
		t.Fatal("AFL accepted Tau1 > 1")
	}
	cfg := twoLayerConfig(1)
	cfg.Tau2 = 3
	if _, err := StochasticAFL(fltest.ToyProblem(1), cfg); err == nil {
		t.Fatal("AFL accepted Tau2 > 1")
	}
}

func TestDRFALearnsAndMovesP(t *testing.T) {
	res, err := DRFA(fltest.ToyProblem(1), twoLayerConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if final := res.History.Final().Fair; final.Average < 0.7 {
		t.Fatalf("DRFA reached only %v", final.Average)
	}
	if res.PWeights[3] <= 0.25 {
		t.Fatalf("DRFA did not overweight the hard area: %v", res.PWeights)
	}
}

func TestHierFAvgLearnsKeepsPUniform(t *testing.T) {
	res, err := HierFAvg(fltest.ToyProblem(1), fltest.ToyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if final := res.History.Final().Fair; final.Average < 0.75 {
		t.Fatalf("HierFAvg reached only %v", final.Average)
	}
	for _, v := range res.PWeights {
		if v != 0.25 {
			t.Fatalf("HierFAvg moved p: %v", res.PWeights)
		}
	}
	// Three-layer: edge-cloud and client-edge traffic, no client-cloud.
	if res.Ledger.Rounds[topology.ClientCloud] != 0 {
		t.Fatal("HierFAvg used the client-cloud link")
	}
	if res.Ledger.Rounds[topology.EdgeCloud] != int64(2*fltest.ToyConfig().Rounds) {
		t.Fatalf("HierFAvg edge-cloud rounds = %d", res.Ledger.Rounds[topology.EdgeCloud])
	}
}

func TestMinimaxBeatsMinimizationOnWorstArea(t *testing.T) {
	// The central §6 claim, in miniature: at equal training rounds, the
	// minimax methods achieve higher worst-area accuracy than their
	// minimization counterparts, and HierMinimax beats HierFAvg on
	// variance as well.
	cfg := fltest.ToyConfig()
	cfg.Rounds = 300
	hfa, err := HierFAvg(fltest.ToyProblem(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hmm, err := core.HierMinimax(fltest.ToyProblem(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fFair := hfa.History.Final().Fair
	mFair := hmm.History.Final().Fair
	if mFair.Worst <= fFair.Worst {
		t.Fatalf("HierMinimax worst %v not above HierFAvg worst %v", mFair.Worst, fFair.Worst)
	}
	if mFair.Variance >= fFair.Variance {
		t.Fatalf("HierMinimax variance %v not below HierFAvg %v", mFair.Variance, fFair.Variance)
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	type runner func(*fl.Problem, fl.Config) (*fl.Result, error)
	cases := []struct {
		name string
		run  runner
		cfg  fl.Config
	}{
		{"FedAvg", FedAvg, shortened(twoLayerConfig(2))},
		{"AFL", StochasticAFL, shortened(twoLayerConfig(1))},
		{"DRFA", DRFA, shortened(twoLayerConfig(2))},
		{"HierFAvg", HierFAvg, shortened(fltest.ToyConfig())},
	}
	for _, c := range cases {
		a, err := c.run(fltest.ToyProblem(1), c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		b, err := c.run(fltest.ToyProblem(1), c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for i := range a.W {
			if a.W[i] != b.W[i] {
				t.Fatalf("%s: nondeterministic", c.name)
			}
		}
		// Sequential mode must match parallel mode.
		seq := c.cfg
		seq.Sequential = true
		s, err := c.run(fltest.ToyProblem(1), seq)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for i := range a.W {
			if a.W[i] != s.W[i] {
				t.Fatalf("%s: parallel != sequential", c.name)
			}
		}
	}
}

func shortened(cfg fl.Config) fl.Config {
	cfg.Rounds = 25
	return cfg
}

func TestUniformLossEstimatesUnbiased(t *testing.T) {
	// E[v_e] must equal f_e(w): average the estimator over many draws
	// with full batches so only sampling randomness remains.
	prob := fltest.ToyProblem(1)
	cfg := fltest.ToyConfig()
	cfg.LossBatch = 40 // full shard: loss estimate is exact per client
	cfg.SampledEdges = 2
	cfg = cfg.WithDefaults()
	pool := fl.NewModelPool(prob.Model)
	st := &fl.State{
		Prob: prob, Cfg: cfg,
		Ledger: topology.NewLedger(),
		W:      make([]float64, prob.Model.Dim()),
		P:      []float64{0.25, 0.25, 0.25, 0.25},
	}
	rng.New(3).Fill(st.W, 0.1)

	exact := make([]float64, 4)
	m := prob.Model.Clone()
	for e, area := range prob.Fed.Areas {
		exact[e] = m.Loss(st.W, area.Train.Xs, area.Train.Ys)
	}

	const trials = 3000
	mean := make([]float64, 4)
	root := rng.New(99)
	for trial := 0; trial < trials; trial++ {
		v := uniformLossEstimates(st, pool, st.W, root.Child(uint64(trial)), topology.EdgeCloud)
		tensor.Axpy(1.0/trials, v, mean)
	}
	for e := range mean {
		// LossBatch sampling with replacement from the 40-example shard
		// adds a little noise; 2% tolerance is ample for 3000 trials.
		if math.Abs(mean[e]-exact[e]) > 0.02*(1+exact[e]) {
			t.Fatalf("estimator biased at area %d: mean %v, exact %v", e, mean[e], exact[e])
		}
	}
}

func TestSampleEdgeSlotsByPFavorsHeavy(t *testing.T) {
	// The minimax baselines draw their Phase-1 slots straight from
	// rng.SampleWeighted (the bespoke wrapper was deleted); this pins
	// the distributional property at the call they actually make.
	r := rng.New(1)
	p := []float64{0.7, 0.1, 0.1, 0.1}
	counts := make([]int, 4)
	for trial := 0; trial < 2000; trial++ {
		for _, e := range r.SampleWeighted(2, p) {
			counts[e]++
		}
	}
	if counts[0] < counts[1] {
		t.Fatalf("heavy edge sampled less: %v", counts)
	}
	frac := float64(counts[0]) / 4000
	if math.Abs(frac-0.7) > 0.05 {
		t.Fatalf("heavy edge frequency %v, want ~0.7", frac)
	}
}

var _ = model.NewLinear // documentation anchor
