package baselines

import (
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// HierFAvg is hierarchical Federated Averaging (Liu et al. [21]): the
// same three-layer client-edge-cloud architecture and (tau1, tau2)
// schedule as HierMinimax, but solving the minimization problem (1) —
// edges are sampled uniformly and the weights p stay uniform forever.
// The gap between HierFAvg and HierMinimax therefore isolates exactly
// the minimax fairness mechanism (Table 2's comparison).
func HierFAvg(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	pool := fl.NewModelPool(prob.Model)
	return fl.Run("HierFAvg", prob, cfg, func(k int, st *fl.State) {
		hierFAvgRound(k, st, pool)
	})
}

func hierFAvgRound(k int, st *fl.State, pool *fl.ModelPool) {
	cfg := &st.Cfg
	prob := st.Prob
	top := prob.Topology()
	n0 := top.ClientsPerEdge
	dBytes := topology.ModelBytes(len(st.W))
	kr := st.Root.ChildN('k', uint64(k))

	// Uniform edge sampling (no p).
	edges := kr.Child(1).SampleUniform(cfg.SampledEdges, prob.Fed.NumAreas())
	st.Ledger.RecordRound(topology.EdgeCloud, len(edges), dBytes)

	type out struct {
		wEdge   []float64
		iterSum []float64
	}
	outs := make([]out, len(edges))
	cfg.ForEach(len(edges), func(i int) {
		m := pool.Get()
		defer pool.Put(m)
		area := prob.Fed.Areas[edges[i]]
		var iterSum []float64
		if cfg.TrackAverages {
			iterSum = make([]float64, len(st.W))
		}
		we := append([]float64(nil), st.W...)
		finals := make([][]float64, n0)
		for t2 := 0; t2 < cfg.Tau2; t2++ {
			st.Ledger.RecordRound(topology.ClientEdge, n0, dBytes)
			for c := 0; c < n0; c++ {
				r := kr.ChildN(2, uint64(i), uint64(t2), uint64(c))
				wf, _ := fl.LocalSGD(m, we, area.Clients[c], cfg.Tau1, cfg.BatchSize, cfg.EtaW, prob.W, r, 0, iterSum)
				finals[c] = wf
			}
			st.Ledger.RecordRound(topology.ClientEdge, n0, dBytes)
			tensor.AverageInto(we, finals...)
			fl.ProjectW(prob.W, we)
		}
		outs[i] = out{wEdge: we, iterSum: iterSum}
	})
	st.Ledger.RecordRound(topology.EdgeCloud, len(edges), dBytes)

	wVecs := make([][]float64, len(outs))
	for i, o := range outs {
		wVecs[i] = o.wEdge
		if st.WSum != nil {
			tensor.StorageAdd(st.WSum, o.iterSum)
			st.WCount += float64(cfg.Tau1 * cfg.Tau2 * n0)
		}
	}
	tensor.AverageInto(st.W, wVecs...)
	fl.ProjectW(prob.W, st.W)
}
