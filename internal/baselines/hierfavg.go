package baselines

import (
	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// HierFAvg is hierarchical Federated Averaging (Liu et al. [21]): the
// same three-layer client-edge-cloud architecture and (tau1, tau2)
// schedule as HierMinimax, but solving the minimization problem (1) —
// edges are sampled uniformly and the weights p stay uniform forever.
// The gap between HierFAvg and HierMinimax therefore isolates exactly
// the minimax fairness mechanism (Table 2's comparison).
func HierFAvg(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	pool := fl.NewModelPool(prob.Model)
	var folds []cohortFold
	return fl.Run("HierFAvg", prob, cfg, func(k int, st *fl.State) {
		hierFAvgRound(k, st, pool, &folds)
	})
}

func hierFAvgRound(k int, st *fl.State, pool *fl.ModelPool, folds *[]cohortFold) {
	cfg := &st.Cfg
	prob := st.Prob
	top := prob.Topology()
	n0 := top.ClientsPerEdge
	d := len(st.W)
	dBytes := topology.ModelBytes(d)
	kr := st.Root.ChildN('k', uint64(k))

	// Uniform edge sampling (no p).
	edges := kr.Child(1).SampleUniform(cfg.SampledEdges, prob.Fed.NumAreas())
	st.Ledger.RecordRound(topology.EdgeCloud, len(edges), dBytes)

	if cfg.PopulationEnabled() {
		// Sparse population: each sampled edge runs its tau2 aggregation
		// blocks over the (k, edge) roster cohort, folding every block's
		// client models through a streaming MeanAccumulator — the same
		// sampler and aggregation chokepoint as HierMinimax, with
		// HierFAvg's uniform edge weights.
		roster := cfg.Roster(prob.Fed.NumAreas())
		if len(*folds) < len(edges) {
			*folds = make([]cohortFold, len(edges))
		}
		type out struct {
			wEdge, iterSum []float64
			n              int
		}
		outs := make([]out, len(edges))
		cfg.ForEach(len(edges), func(i int) {
			e := edges[i]
			fd := &(*folds)[i]
			corpus := prob.Fed.Areas[e].Train
			fd.cohort = roster.CohortInto(fd.cohort, k, e)
			n := len(fd.cohort)
			var iterSum []float64
			if cfg.TrackAverages {
				iterSum = make([]float64, d)
			}
			we := append([]float64(nil), st.W...)
			for t2 := 0; t2 < cfg.Tau2; t2++ {
				st.Ledger.RecordRound(topology.ClientEdge, n, dBytes)
				fd.run(cfg, pool, d, n, cfg.TrackAverages,
					func(m model.Model, lane, c int, wf, chk, sum []float64) bool {
						shard := roster.ShardInto(fd.cohort[c], corpus, &fd.shards[lane])
						copy(wf, we)
						return fl.LocalSGDInto(m, wf, shard, cfg.Tau1, cfg.BatchSize, cfg.EtaW, prob.W, kr.ChildN(2, uint64(i), uint64(t2), uint64(c)), 0, sum, chk)
					}, iterSum)
				st.Ledger.RecordRound(topology.ClientEdge, n, dBytes)
				fd.wAcc.FinishInto(we)
				fl.ProjectW(prob.W, we)
			}
			outs[i] = out{wEdge: we, iterSum: iterSum, n: n}
		})
		st.Ledger.RecordRound(topology.EdgeCloud, len(edges), dBytes)
		wVecs := make([][]float64, len(outs))
		for i, o := range outs {
			wVecs[i] = o.wEdge
			if st.WSum != nil {
				tensor.StorageAdd(st.WSum, o.iterSum)
				st.WCount += float64(cfg.Tau1 * cfg.Tau2 * o.n)
			}
		}
		tensor.AverageInto(st.W, wVecs...)
		fl.ProjectW(prob.W, st.W)
		return
	}

	type out struct {
		wEdge   []float64
		iterSum []float64
	}
	outs := make([]out, len(edges))
	cfg.ForEach(len(edges), func(i int) {
		m := pool.Get()
		defer pool.Put(m)
		area := prob.Fed.Areas[edges[i]]
		var iterSum []float64
		if cfg.TrackAverages {
			iterSum = make([]float64, len(st.W))
		}
		we := append([]float64(nil), st.W...)
		finals := make([][]float64, n0)
		for t2 := 0; t2 < cfg.Tau2; t2++ {
			st.Ledger.RecordRound(topology.ClientEdge, n0, dBytes)
			for c := 0; c < n0; c++ {
				r := kr.ChildN(2, uint64(i), uint64(t2), uint64(c))
				wf, _ := fl.LocalSGD(m, we, area.Clients[c], cfg.Tau1, cfg.BatchSize, cfg.EtaW, prob.W, r, 0, iterSum)
				finals[c] = wf
			}
			st.Ledger.RecordRound(topology.ClientEdge, n0, dBytes)
			tensor.AverageInto(we, finals...)
			fl.ProjectW(prob.W, we)
		}
		outs[i] = out{wEdge: we, iterSum: iterSum}
	})
	st.Ledger.RecordRound(topology.EdgeCloud, len(edges), dBytes)

	wVecs := make([][]float64, len(outs))
	for i, o := range outs {
		wVecs[i] = o.wEdge
		if st.WSum != nil {
			tensor.StorageAdd(st.WSum, o.iterSum)
			st.WCount += float64(cfg.Tau1 * cfg.Tau2 * n0)
		}
	}
	tensor.AverageInto(st.W, wVecs...)
	fl.ProjectW(prob.W, st.W)
}
