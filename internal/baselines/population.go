package baselines

import (
	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// popLanes is the chunk width of the baselines' streaming cohort folds:
// sampled clients run popLanes at a time on parallel workers, then
// their models stream into MeanAccumulators in sample order. Live
// model-sized buffers are bounded at O(popLanes*d) regardless of how
// many clients a round samples; the fold order — and therefore the
// trajectory — is independent of the chunking and the worker count.
const popLanes = 32

// cohortFold owns the lane buffers of one streaming cohort fold and is
// reused across rounds (baseline round closures keep one per slot
// lane). Everything here is O(popLanes*d) or O(shard).
type cohortFold struct {
	cohort []int
	finals [][]float64
	chks   [][]float64
	sums   [][]float64
	chked  []bool
	shards []population.ShardScratch
	wAcc   tensor.MeanAccumulator
	chkAcc tensor.MeanAccumulator
}

func growLanes(rows [][]float64, lanes, d int) [][]float64 {
	if len(rows) < lanes {
		rows = make([][]float64, lanes)
	}
	rows = rows[:lanes]
	for i := range rows {
		if len(rows[i]) != d {
			rows[i] = make([]float64, d)
		}
	}
	return rows
}

// run trains n sampled clients through sgd on parallel popLanes-wide
// chunks and folds the results into the accumulators in sample order.
// sgd runs client idx on lane buffers (lane indexes the per-lane shard
// scratch f.shards) and reports whether a checkpoint was taken; its
// result must depend only on idx, never on the lane or the chunking.
// track folds sums into iterSum in the same order. Returns the number
// of clients folded.
func (f *cohortFold) run(cfg *fl.Config, pool *fl.ModelPool, d, n int, track bool,
	sgd func(m model.Model, lane, idx int, wf, chk, sum []float64) bool,
	iterSum []float64) int {
	lanes := popLanes
	if n < lanes {
		lanes = n
	}
	f.finals = growLanes(f.finals, lanes, d)
	f.chks = growLanes(f.chks, lanes, d)
	if track {
		f.sums = growLanes(f.sums, lanes, d)
	}
	if len(f.chked) < lanes {
		f.chked = make([]bool, lanes)
	}
	if len(f.shards) < lanes {
		f.shards = make([]population.ShardScratch, lanes)
	}
	f.wAcc.Reset(d)
	f.chkAcc.Reset(d)
	for base := 0; base < n; base += lanes {
		span := lanes
		if base+span > n {
			span = n - base
		}
		runLanes := func(lo, hi int) {
			m := pool.Get()
			defer pool.Put(m)
			for lane := lo; lane < hi; lane++ {
				var sum []float64
				if track {
					sum = f.sums[lane]
					tensor.Zero(sum)
				}
				f.chked[lane] = sgd(m, lane, base+lane, f.finals[lane], f.chks[lane], sum)
			}
		}
		if cfg.Sequential {
			runLanes(0, span)
		} else {
			tensor.ParallelFor(span, 1, runLanes)
		}
		for lane := 0; lane < span; lane++ {
			f.wAcc.Add(f.finals[lane])
			if f.chked[lane] {
				f.chkAcc.Add(f.chks[lane])
			}
			if track {
				tensor.StorageAdd(iterSum, f.sums[lane])
			}
		}
	}
	return n
}

// uniformLossEstimatesPop is uniformLossEstimates in the sparse
// population regime: the m_E uniformly sampled edges estimate the loss
// over their round-k roster cohorts (fl.CohortLossEstimate) instead of
// their resident clients, and the ledger prices the model broadcast and
// scalar uplink per cohort member on the cloud link (the two-layer
// methods' clients talk to the cloud directly).
func uniformLossEstimatesPop(st *fl.State, pool *fl.ModelPool, roster population.Roster, k int, w []float64, r *rng.Stream, cloudLink topology.Link) []float64 {
	cfg := &st.Cfg
	prob := st.Prob
	nE := prob.Fed.NumAreas()
	dBytes := topology.ModelBytes(len(w))
	sampled := r.SampleUniform(cfg.SampledEdges, nE)
	losses := make([]float64, len(sampled))
	nTot := 0
	for _, e := range sampled {
		nTot += roster.CohortSize(e)
	}
	st.Ledger.RecordRound(cloudLink, nTot, dBytes)
	cfg.ForEach(len(sampled), func(i int) {
		m := pool.Get()
		defer pool.Put(m)
		er := r.ChildN(5, uint64(i))
		e := sampled[i]
		losses[i] = fl.CohortLossEstimate(m, w, prob.Fed.Areas[e].Train, roster, k, e, cfg.LossBatch, er)
	})
	st.Ledger.RecordRound(cloudLink, nTot, 8)
	v := make([]float64, nE)
	scale := float64(nE) / float64(cfg.SampledEdges)
	for i, e := range sampled {
		v[e] += scale * losses[i]
	}
	return v
}
