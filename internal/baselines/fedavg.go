// Package baselines implements the four comparison methods of §6 —
// FedAvg [23], Stochastic-AFL [25], DRFA [10] and HierFAvg [21] — over
// the same substrates (models, data, topology ledger) as HierMinimax, so
// the communication and fairness comparisons are apples-to-apples. Each
// baseline is implemented from its own paper's description rather than by
// reconfiguring HierMinimax.
package baselines

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/optim"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// FedAvg is standard Federated Averaging (McMahan et al. [23]) on the
// two-layer client-server architecture: every round the server samples
// m = SampledEdges*N0 clients uniformly, each runs Tau1 local SGD steps,
// and the server averages the returned models. It solves the
// minimization problem (1) with fixed uniform weights; p is never
// updated. Config.Tau2 must be 1 (two-layer methods have no client-edge
// aggregation).
func FedAvg(prob *fl.Problem, cfg fl.Config) (*fl.Result, error) {
	if err := requireTwoLayer("FedAvg", cfg); err != nil {
		return nil, err
	}
	pool := fl.NewModelPool(prob.Model)
	top := prob.Topology()
	if cfg.PopulationEnabled() {
		// Sparse population: SamplePerRound clients are drawn uniformly
		// from the registered roster (FedAvg's sampling distribution is
		// uniform over clients, not p-weighted over edges), their shards
		// materialize lazily from the striped edge corpora, and the
		// server average streams through one MeanAccumulator — O(sampled)
		// work and O(popLanes*d) live buffers, never O(Population).
		var fold cohortFold
		return fl.Run("FedAvg", prob, cfg, func(k int, st *fl.State) {
			cfg := &st.Cfg
			d := len(st.W)
			roster := cfg.Roster(prob.Fed.NumAreas())
			dBytes := topology.ModelBytes(d)
			kr := st.Root.ChildN('k', uint64(k))
			clients := kr.Child(1).SampleUniform(cfg.SamplePerRound, cfg.Population)
			st.Ledger.RecordRound(topology.ClientCloud, len(clients), dBytes)
			n := fold.run(cfg, pool, d, len(clients), cfg.TrackAverages,
				func(m model.Model, lane, i int, wf, chk, sum []float64) bool {
					id := clients[i]
					shard := roster.ShardInto(id, prob.Fed.Areas[roster.EdgeOf(id)].Train, &fold.shards[lane])
					copy(wf, st.W)
					return fl.LocalSGDInto(m, wf, shard, cfg.Tau1, cfg.BatchSize, cfg.EtaW, prob.W, kr.ChildN(2, uint64(i)), 0, sum, chk)
				}, st.WSum)
			if cfg.TrackAverages {
				st.WCount += float64(cfg.Tau1 * n)
			}
			st.Ledger.RecordRound(topology.ClientCloud, n, dBytes)
			fold.wAcc.FinishInto(st.W)
			fl.ProjectW(prob.W, st.W)
		})
	}
	return fl.Run("FedAvg", prob, cfg, func(k int, st *fl.State) {
		cfg := &st.Cfg
		dBytes := topology.ModelBytes(len(st.W))
		kr := st.Root.ChildN('k', uint64(k))
		m := cfg.SampledEdges * top.ClientsPerEdge
		clients := kr.Child(1).SampleUniform(m, top.NumClients())

		st.Ledger.RecordRound(topology.ClientCloud, len(clients), dBytes)
		finals := make([][]float64, len(clients))
		sums := make([][]float64, len(clients))
		cfg.ForEach(len(clients), func(i int) {
			mod := pool.Get()
			defer pool.Put(mod)
			var iterSum []float64
			if cfg.TrackAverages {
				iterSum = make([]float64, len(st.W))
			}
			e := top.EdgeOf(clients[i])
			shard := prob.Fed.Areas[e].Clients[clients[i]%top.ClientsPerEdge]
			wf, _ := fl.LocalSGD(mod, st.W, shard, cfg.Tau1, cfg.BatchSize, cfg.EtaW, prob.W, kr.ChildN(2, uint64(i)), 0, iterSum)
			finals[i] = wf
			sums[i] = iterSum
		})
		st.Ledger.RecordRound(topology.ClientCloud, len(clients), dBytes)
		if cfg.TrackAverages {
			for _, s := range sums {
				tensor.StorageAdd(st.WSum, s)
				st.WCount += float64(cfg.Tau1)
			}
		}
		tensor.AverageInto(st.W, finals...)
		fl.ProjectW(prob.W, st.W)
	})
}

// requireTwoLayer rejects configurations with client-edge aggregation,
// which two-layer methods cannot perform.
func requireTwoLayer(name string, cfg fl.Config) error {
	if cfg.Tau2 > 1 {
		return fmt.Errorf("baselines: %s is a two-layer method; Tau2 must be 1, got %d", name, cfg.Tau2)
	}
	return nil
}

// uniformLossEstimates samples m_E edges uniformly, estimates each
// sampled edge's loss at w via client mini-batches, and returns the
// unbiased gradient estimate v (v_e = (N_E/m_E) f_e(w) on sampled edges,
// 0 elsewhere). Communication is recorded on the given cloud link class.
func uniformLossEstimates(st *fl.State, pool *fl.ModelPool, w []float64, r *rng.Stream, cloudLink topology.Link) []float64 {
	cfg := &st.Cfg
	prob := st.Prob
	nE := prob.Fed.NumAreas()
	dBytes := topology.ModelBytes(len(w))
	sampled := r.SampleUniform(cfg.SampledEdges, nE)
	st.Ledger.RecordRound(cloudLink, len(sampled), dBytes)
	losses := make([]float64, len(sampled))
	cfg.ForEach(len(sampled), func(i int) {
		m := pool.Get()
		defer pool.Put(m)
		er := r.ChildN(5, uint64(i))
		area := prob.Fed.Areas[sampled[i]]
		if cloudLink == topology.EdgeCloud {
			// Three-layer: the edge relays to clients.
			st.Ledger.RecordRound(topology.ClientEdge, len(area.Clients), dBytes)
			defer st.Ledger.RecordRound(topology.ClientEdge, len(area.Clients), 8)
		}
		losses[i] = fl.AreaLossEstimate(m, w, area, cfg.LossBatch, er)
	})
	st.Ledger.RecordRound(cloudLink, len(sampled), 8)
	v := make([]float64, nE)
	scale := float64(nE) / float64(cfg.SampledEdges)
	for i, e := range sampled {
		v[e] += scale * losses[i]
	}
	return v
}

// ascendP applies p <- Proj_P(p + step*v).
func ascendP(st *fl.State, v []float64, step float64) {
	optim.AscentStep(st.P, v, step, st.Prob.P)
}
