package baselines

import (
	"testing"

	"repro/internal/fl"
	"repro/internal/fl/fltest"
	"repro/internal/tensor"
)

// popBaselines enumerates every baseline under the sparse population
// regime; the two-layer methods keep their Tau1/Tau2 constraints.
func popBaselines() []struct {
	name string
	run  func(*fl.Problem, fl.Config) (*fl.Result, error)
	prep func(*fl.Config)
} {
	return []struct {
		name string
		run  func(*fl.Problem, fl.Config) (*fl.Result, error)
		prep func(*fl.Config)
	}{
		{"FedAvg", FedAvg, func(c *fl.Config) { c.Tau2 = 1 }},
		{"Stochastic-AFL", StochasticAFL, func(c *fl.Config) { c.Tau1, c.Tau2 = 1, 1 }},
		{"DRFA", DRFA, func(c *fl.Config) { c.Tau2 = 1 }},
		{"HierFAvg", HierFAvg, func(c *fl.Config) {}},
	}
}

// TestBaselinesPopulationDeterministicAcrossWorkers: every baseline's
// population path must be invariant to the engine's parallelism — the
// streaming cohort folds happen in sample order regardless of chunking
// or worker count.
func TestBaselinesPopulationDeterministicAcrossWorkers(t *testing.T) {
	for _, b := range popBaselines() {
		t.Run(b.name, func(t *testing.T) {
			cfg := fltest.ToyConfig()
			cfg.Rounds = 20
			cfg.TrackAverages = true
			cfg.Population = 400
			cfg.SamplePerRound = 6
			b.prep(&cfg)
			cfg.Sequential = true
			ref, err := b.run(fltest.ToyProblem(1), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 13} {
				c := cfg
				c.Sequential = false
				c.Workers = workers
				got, err := b.run(fltest.ToyProblem(1), c)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ref.W {
					if ref.W[i] != got.W[i] {
						t.Fatalf("workers=%d: w diverges at %d", workers, i)
					}
				}
				for i := range ref.WHat {
					if ref.WHat[i] != got.WHat[i] {
						t.Fatalf("workers=%d: wHat diverges at %d", workers, i)
					}
				}
				if ref.Ledger != got.Ledger {
					t.Fatalf("workers=%d: ledgers differ", workers)
				}
			}
		})
	}
}

// TestBaselinesPopulationLearns: the population regime must still
// train every baseline to a sane accuracy on the toy problem, with the
// ledger independent of the registered population size.
func TestBaselinesPopulationLearns(t *testing.T) {
	for _, b := range popBaselines() {
		t.Run(b.name, func(t *testing.T) {
			cfg := fltest.ToyConfig()
			cfg.Population = 400
			cfg.SamplePerRound = 6
			b.prep(&cfg)
			res, err := b.run(fltest.ToyProblem(1), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.AllFinite(res.W) {
				t.Fatal("non-finite parameters")
			}
			if final := res.History.Final().Fair; final.Average < 0.6 {
				t.Fatalf("%s population run reached only %v", b.name, final.Average)
			}

			cfg.Population = 40000
			big, err := b.run(fltest.ToyProblem(1), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ledger != big.Ledger {
				t.Fatalf("%s ledger depends on population size", b.name)
			}
		})
	}
}
