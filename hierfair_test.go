package hierfair

import (
	"math"
	"testing"
)

// smokeSpec is a seconds-fast configuration used across the API tests.
func smokeSpec(alg Algorithm) Spec {
	s := DefaultSpec(alg)
	s.InputDim = 48
	s.TrainPerClass = 400
	s.TestPerClass = 100
	s.Rounds = 500
	s.EtaW = 0.01
	s.EtaP = 0.001
	s.EvalEvery = 50
	// Seed 8's prototype geometry has a clearly hard hub class, so the
	// fairness separation between minimax and minimization is large and
	// stable (the deterministic instance the fairness assertions probe).
	s.Seed = 8
	return s
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AlgHierMinimax, AlgHierFAvg, AlgFedAvg, AlgAFL, AlgDRFA} {
		rep, err := Run(smokeSpec(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rep.FinalAverage < 0.6 {
			t.Fatalf("%s: final average %v too low", alg, rep.FinalAverage)
		}
		if len(rep.History) == 0 || rep.CloudRounds == 0 {
			t.Fatalf("%s: empty history or ledger", alg)
		}
		if len(rep.EdgeWeights) != 10 {
			t.Fatalf("%s: edge weights %v", alg, rep.EdgeWeights)
		}
		if rep.Summary() == "" {
			t.Fatalf("%s: empty summary", alg)
		}
	}
}

func TestRunRequiresAlgorithm(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSimnetEngineMatchesInProcess(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Rounds = 60
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine = EngineSimNet
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Parameters(), b.Parameters()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("engines diverge at parameter %d", i)
		}
	}
	if b.SimulatedMs <= 0 || b.MessagesSent == 0 {
		t.Fatal("simnet stats missing")
	}
}

func TestChaosSpecInjectsFaults(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Engine = EngineSimNet
	spec.Rounds = 120
	spec.Chaos = Chaos{CrashProb: 0.15, LossProb: 0.05, MaxRetries: 1}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.MessagesLost == 0 || rep.Timeouts == 0 || rep.Retries == 0 {
		t.Fatalf("fault plan produced no fault activity: %+v", rep)
	}
	if rep.History[len(rep.History)-1].Round != spec.Rounds {
		t.Fatal("faulted run stopped early")
	}
	if rep.FinalAverage < 0.5 {
		t.Fatalf("faulted run collapsed: average %v", rep.FinalAverage)
	}
}

func TestChaosRequiresSimnetEngine(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Chaos = Chaos{CrashProb: 0.1}
	if _, err := Run(spec); err == nil {
		t.Fatal("in-process engine accepted a chaos plan")
	}
}

func TestSimnetRejectsBaselines(t *testing.T) {
	spec := smokeSpec(AlgDRFA)
	spec.Engine = EngineSimNet
	if _, err := Run(spec); err == nil {
		t.Fatal("simnet accepted a baseline algorithm")
	}
}

func TestPredictWorks(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 48)
	cls := rep.Predict(x)
	if cls < 0 || cls >= 10 {
		t.Fatalf("Predict returned %d", cls)
	}
	// Parameters must be a copy.
	p := rep.Parameters()
	p[0] += 1e9
	if rep.Predict(x) != cls {
		t.Fatal("Parameters leaked internal state")
	}
}

func TestMinimaxFairnessViaPublicAPI(t *testing.T) {
	hmm, err := Run(smokeSpec(AlgHierMinimax))
	if err != nil {
		t.Fatal(err)
	}
	hfa, err := Run(smokeSpec(AlgHierFAvg))
	if err != nil {
		t.Fatal(err)
	}
	if hmm.FinalVariance >= hfa.FinalVariance {
		t.Fatalf("HierMinimax variance %v not below HierFAvg %v", hmm.FinalVariance, hfa.FinalVariance)
	}
	if hmm.FinalWorst <= hfa.FinalWorst {
		t.Fatalf("HierMinimax worst %v not above HierFAvg %v", hmm.FinalWorst, hfa.FinalWorst)
	}
	// HierFAvg never moves p.
	for _, v := range hfa.EdgeWeights {
		if math.Abs(v-0.1) > 1e-12 {
			t.Fatalf("HierFAvg p = %v", hfa.EdgeWeights)
		}
	}
	// HierMinimax overweights the hub class (area 4 under one-class).
	if hmm.EdgeWeights[4] <= 0.1 {
		t.Fatalf("HierMinimax did not overweight the hub: %v", hmm.EdgeWeights)
	}
}

func TestDatasets(t *testing.T) {
	cases := []Spec{
		func() Spec {
			s := smokeSpec(AlgHierMinimax)
			s.Dataset = DatasetFashion
			s.Partition = PartitionSimilarity
			s.Similarity = 0.5
			return s
		}(),
		func() Spec {
			s := smokeSpec(AlgHierMinimax)
			s.Dataset = DatasetMNIST
			s.Partition = PartitionDirichlet
			s.DirichletAlpha = 0.3
			s.NumEdges = 6
			s.SampledEdges = 3
			return s
		}(),
		func() Spec {
			s := smokeSpec(AlgHierMinimax)
			s.Dataset = DatasetAdult
			s.NumEdges = 2
			s.SampledEdges = 2
			s.TrainPerClass = 400
			s.TestPerClass = 150
			return s
		}(),
		func() Spec {
			s := smokeSpec(AlgHierMinimax)
			s.Dataset = DatasetSynthetic
			s.NumEdges = 12
			s.SampledEdges = 4
			return s
		}(),
	}
	for _, spec := range cases {
		rep, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Dataset, err)
		}
		if rep.FinalAverage <= 0.3 {
			t.Fatalf("%s: suspiciously low accuracy %v", spec.Dataset, rep.FinalAverage)
		}
	}
}

func TestCustomDataset(t *testing.T) {
	// Two trivially separable areas.
	mk := func(off float64) AreaSamples {
		var a AreaSamples
		for i := 0; i < 40; i++ {
			x := []float64{off + float64(i%5)*0.01, -off}
			y := 0
			if off > 0 {
				y = 1
			}
			a.TrainX = append(a.TrainX, x)
			a.TrainY = append(a.TrainY, y)
			a.TestX = append(a.TestX, x)
			a.TestY = append(a.TestY, y)
		}
		return a
	}
	spec := Spec{
		Algorithm:      AlgHierMinimax,
		Dataset:        DatasetCustom,
		Custom:         []AreaSamples{mk(-1), mk(1)},
		NumClasses:     2,
		NumEdges:       2,
		ClientsPerEdge: 2,
		SampledEdges:   2,
		Rounds:         200,
		Tau1:           2,
		Tau2:           2,
		EtaW:           0.1,
		EtaP:           0.001,
		BatchSize:      4,
		Seed:           3,
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalWorst < 0.95 {
		t.Fatalf("custom separable data not learned: worst %v", rep.FinalWorst)
	}
	if rep.Predict([]float64{1, -1}) != 1 || rep.Predict([]float64{-1, 1}) != 0 {
		t.Fatal("Predict wrong on custom data")
	}
}

func TestCustomDatasetValidation(t *testing.T) {
	spec := Spec{Algorithm: AlgHierMinimax, Dataset: DatasetCustom, Rounds: 1, EtaW: 0.1}
	if _, err := Run(spec); err == nil {
		t.Fatal("custom dataset without areas accepted")
	}
	spec.Custom = []AreaSamples{{TrainX: [][]float64{{1}}, TrainY: []int{0}}}
	if _, err := Run(spec); err == nil {
		t.Fatal("custom dataset without NumClasses accepted")
	}
}

func TestQuantizedSpec(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.QuantBits = 8
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(smokeSpec(AlgHierMinimax))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes >= exact.TotalBytes {
		t.Fatalf("quantized run moved %d bytes >= exact %d", rep.TotalBytes, exact.TotalBytes)
	}
	if rep.FinalAverage < 0.6 {
		t.Fatalf("quantized run accuracy %v", rep.FinalAverage)
	}
}

func TestCappedPSpec(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.PCap = 0.2
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for e, v := range rep.EdgeWeights {
		if v > 0.2+1e-9 {
			t.Fatalf("weight %d = %v exceeds cap", e, v)
		}
	}
}

func TestOneClassPartitionRequiresMatchingEdges(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.NumEdges = 7
	if _, err := Run(spec); err == nil {
		t.Fatal("one-class partition with 7 edges over 10 classes accepted")
	}
}

func TestHistoryMonotoneCloudRounds(t *testing.T) {
	rep, err := Run(smokeSpec(AlgHierMinimax))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.History); i++ {
		if rep.History[i].CloudRounds < rep.History[i-1].CloudRounds {
			t.Fatal("cloud rounds not monotone")
		}
		if rep.History[i].Round <= rep.History[i-1].Round {
			t.Fatal("rounds not increasing")
		}
	}
	if math.Abs(sum(rep.History[len(rep.History)-1].EdgeWeights)-1) > 1e-9 {
		t.Fatal("final p not a distribution")
	}
}

func sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func TestMultiLayerSpec(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.ClientsPerEdge = 4
	spec.Branching = []int{2, 2, 10}
	spec.Taus = []int{2, 2, 2}
	spec.Rounds = 250 // 8 slots per round
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "HierMinimax/4-layer" {
		t.Fatalf("algorithm = %q", rep.Algorithm)
	}
	if rep.FinalAverage < 0.6 {
		t.Fatalf("4-layer run reached only %v", rep.FinalAverage)
	}
}

func TestMultiLayerSpecRejectsBaselines(t *testing.T) {
	spec := smokeSpec(AlgDRFA)
	spec.Branching = []int{3, 10}
	spec.Taus = []int{2, 2}
	if _, err := Run(spec); err == nil {
		t.Fatal("multi-layer baseline accepted")
	}
	spec = smokeSpec(AlgHierMinimax)
	spec.Branching = []int{3, 10}
	spec.Taus = []int{2, 2}
	spec.Engine = EngineSimNet
	if _, err := Run(spec); err == nil {
		t.Fatal("multi-layer simnet accepted")
	}
}

func TestMultiLayerSpecValidatesTree(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Branching = []int{5, 10} // ClientsPerEdge is 3, tree wants 5
	spec.Taus = []int{2, 2}
	if _, err := Run(spec); err == nil {
		t.Fatal("mismatched tree accepted")
	}
}
