package hierfair

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/fl"
	"repro/internal/simnet"
)

// DistConfig places one process of a distributed (real-TCP) run. Every
// process of the run must be given the same Spec: each one rebuilds the
// same problem from the same seed, and a fingerprint handshake rejects
// peers whose trajectory-relevant knobs differ.
type DistConfig struct {
	// Listen is this process's TCP bind address (":0" picks a free
	// port; Started reports the choice).
	Listen string
	// Connect is the upstream address: the cloud for an edge, the edge
	// for a client host. Unused by the cloud role.
	Connect string
	// Edge is the edge-area index served (edge and client-host roles).
	Edge int
	// Started, when set, is called once with the bound listen address.
	Started func(addr string)
}

// distProblem validates a Spec for distributed execution and builds the
// problem, engine config and fault schedule every role shares.
func (s Spec) distProblem() (*fl.Problem, fl.Config, *chaos.Schedule, error) {
	if s.Engine == "" || s.Engine == EngineInProcess {
		s.Engine = EngineSimNet // the wire runtimes sit behind the simnet seam
	}
	if err := s.normalize(); err != nil {
		return nil, fl.Config{}, nil, err
	}
	if s.Algorithm != AlgHierMinimax {
		return nil, fl.Config{}, nil, fmt.Errorf("hierfair: distributed roles only run %s", AlgHierMinimax)
	}
	if len(s.Branching) > 0 {
		return nil, fl.Config{}, nil, fmt.Errorf("hierfair: distributed roles do not support multi-layer trees")
	}
	if s.Population > 0 {
		// The wire runtimes place one client actor per resident client on
		// real sockets; a sparse population has no resident clients to
		// place. Use the in-process or simnet engine for population runs.
		return nil, fl.Config{}, nil, fmt.Errorf("hierfair: distributed roles do not support Spec.Population (virtual cohorts need no client processes)")
	}
	prob, cfg, err := s.buildProblem()
	if err != nil {
		return nil, fl.Config{}, nil, err
	}
	return prob, cfg, s.Chaos.schedule(s.Seed), nil
}

func (s Spec) distOpts(sched *chaos.Schedule) []simnet.Option {
	if sched == nil {
		return nil
	}
	return []simnet.Option{simnet.WithChaos(sched)}
}

// RunCloud runs the cloud role of a distributed run: it listens on
// dist.Listen, waits for every edge's hello and readiness, drives the
// training rounds over the sockets, and reports exactly like Run — the
// trajectory is bitwise-identical to the same Spec on EngineSimNet.
func RunCloud(spec Spec, dist DistConfig) (*Report, error) {
	prob, cfg, sched, err := spec.distProblem()
	if err != nil {
		return nil, err
	}
	res, stats, err := simnet.ServeCloud(prob, cfg, simnet.DistConfig{
		Listen:  dist.Listen,
		Started: dist.Started,
	}, spec.distOpts(sched)...)
	if err != nil {
		return nil, err
	}
	return newReport(prob, res, stats), nil
}

// RunEdge serves one edge area of a distributed run, connecting up to
// the cloud at dist.Connect and hosting the edge aggregation actor. It
// blocks until the cloud finishes the run.
func RunEdge(spec Spec, dist DistConfig) error {
	prob, cfg, sched, err := spec.distProblem()
	if err != nil {
		return err
	}
	return simnet.ServeEdge(prob, cfg, simnet.DistConfig{
		Listen:  dist.Listen,
		Connect: dist.Connect,
		Edge:    dist.Edge,
		Started: dist.Started,
	}, spec.distOpts(sched)...)
}

// RunClientHost serves the client actors of one edge area, connecting up
// to that area's edge server at dist.Connect. It blocks until the cloud
// finishes the run.
func RunClientHost(spec Spec, dist DistConfig) error {
	prob, cfg, sched, err := spec.distProblem()
	if err != nil {
		return err
	}
	return simnet.ServeClientHost(prob, cfg, simnet.DistConfig{
		Listen:  dist.Listen,
		Connect: dist.Connect,
		Edge:    dist.Edge,
		Started: dist.Started,
	}, spec.distOpts(sched)...)
}
