// Command tradeoff sweeps the communication/convergence knob alpha of §5
// (tau1*tau2 ~ T^alpha) on a convex workload and prints, for each alpha,
// the spent edge-cloud communication and the realized duality gap — the
// empirical companion to Table 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	scaleName := flag.String("scale", "smoke", "scale: smoke|small|full")
	seed := flag.Uint64("seed", 42, "random seed")
	jobs := flag.Int("jobs", 0, "concurrent alpha runs (0 = GOMAXPROCS); any value yields identical output")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.Smoke
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "tradeoff: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	res, err := experiments.Tradeoff(sched.New(*jobs), scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
}
