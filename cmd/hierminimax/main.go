// Command hierminimax trains one algorithm on one workload and prints
// per-snapshot metrics plus the final fairness summary and communication
// totals.
//
// Examples:
//
//	hierminimax -alg hierminimax -dataset emnist -rounds 2000
//	hierminimax -alg drfa -dataset fashion -partition similarity -model mlp
//	hierminimax -alg hierminimax -engine simnet -rounds 200
//
// A run can also be split across real processes connected by TCP: one
// -role cloud process, and per edge area one -role edge and one -role
// client-host process, every one given the same workload flags. Each
// process prints its bound listen address ("<role> listening on ...") so
// ":0" allocations can be scripted:
//
//	hierminimax -role cloud -listen 127.0.0.1:7000 -dataset synthetic -edges 2
//	hierminimax -role edge -edge-index 0 -listen 127.0.0.1:0 -connect 127.0.0.1:7000 -dataset synthetic -edges 2
//	hierminimax -role client-host -edge-index 0 -listen 127.0.0.1:0 -connect <edge addr> -dataset synthetic -edges 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/obs"
	"repro/internal/tensor"
)

func main() {
	var spec hierfair.Spec
	var alg, dataset, partition, mdl, engine string

	flag.StringVar(&alg, "alg", "hierminimax", "algorithm: hierminimax|hierfavg|fedavg|afl|drfa")
	flag.StringVar(&dataset, "dataset", "emnist", "dataset: emnist|mnist|fashion|adult|synthetic")
	flag.StringVar(&partition, "partition", "one-class", "partition: one-class|similarity|dirichlet")
	flag.StringVar(&mdl, "model", "logreg", "model: logreg|mlp")
	flag.StringVar(&engine, "engine", "inprocess", "engine: inprocess|simnet")
	role := flag.String("role", "", "distributed role: cloud|edge|client-host (default: whole run in this process)")
	listen := flag.String("listen", "", "TCP listen address for -role (\":0\" picks a free port)")
	connect := flag.String("connect", "", "upstream address: the cloud for -role edge, the edge for -role client-host")
	edgeIndex := flag.Int("edge-index", 0, "edge area index for -role edge|client-host")
	flag.Float64Var(&spec.Similarity, "s", 0.5, "similarity fraction for -partition similarity")
	flag.IntVar(&spec.NumEdges, "edges", 10, "number of edge areas N_E")
	flag.IntVar(&spec.ClientsPerEdge, "clients", 3, "clients per edge area N0")
	flag.IntVar(&spec.InputDim, "dim", 784, "feature dimension for image datasets")
	flag.IntVar(&spec.TrainPerClass, "train", 2000, "training examples per class")
	flag.IntVar(&spec.TestPerClass, "test", 150, "test examples per class")
	flag.IntVar(&spec.Rounds, "rounds", 3000, "training rounds K")
	flag.IntVar(&spec.Tau1, "tau1", 2, "local SGD steps per aggregation")
	flag.IntVar(&spec.Tau2, "tau2", 2, "client-edge aggregations per round (hierarchical only)")
	flag.Float64Var(&spec.EtaW, "etaw", 0.002, "model learning rate")
	flag.Float64Var(&spec.EtaP, "etap", 0.0003, "weight learning rate")
	flag.IntVar(&spec.BatchSize, "batch", 4, "local mini-batch size")
	flag.IntVar(&spec.SampledEdges, "me", 5, "sampled edges per round m_E")
	flag.IntVar(&spec.Population, "population", 0, "registered client population for the sparse regime: clients exist as seed records and only sampled cohorts materialize (0 = every client resident; requires -sample-per-round)")
	flag.IntVar(&spec.SamplePerRound, "sample-per-round", 0, "clients sampled per round from -population, split evenly across the sampled edges")
	flag.UintVar(&spec.QuantBits, "quant", 0, "uplink quantization bits (0 = exact; alias of -quant-bits)")
	flag.UintVar(&spec.QuantBits, "quant-bits", 0, "stochastic uniform uplink quantization bits in [1,32] (0 = exact)")
	flag.IntVar(&spec.TopK, "topk", 0, "top-k sparsified uplinks with error feedback: coordinates kept per vector (0 = exact; excludes -quant-bits)")
	flag.Float64Var(&spec.DropoutProb, "dropout", 0, "per-slot dropout probability")
	flag.Float64Var(&spec.PCap, "pcap", 0, "cap for the weight simplex (0 = none)")
	flag.Float64Var(&spec.Chaos.CrashProb, "crash", 0, "per-round client crash probability (simnet)")
	flag.Float64Var(&spec.Chaos.PartitionProb, "partition-prob", 0, "per-round edge partition probability (simnet)")
	flag.Float64Var(&spec.Chaos.LossProb, "loss", 0, "per-transfer message loss probability (simnet)")
	flag.Float64Var(&spec.Chaos.StragglerProb, "straggle", 0, "per-round client straggler probability (simnet)")
	flag.Float64Var(&spec.Chaos.StragglerMs, "straggle-ms", 0, "simulated delay per straggler block, ms (simnet)")
	flag.Float64Var(&spec.Chaos.TimeoutMs, "timeout-ms", 0, "fan-in deadline in simulated ms (0 = 250; simnet)")
	flag.IntVar(&spec.Chaos.MaxRetries, "retries", 0, "retransmissions per lost message (simnet)")
	flag.Uint64Var(&spec.Chaos.Seed, "chaos-seed", 0, "fault-schedule seed (0 = derive from -seed)")
	flag.Uint64Var(&spec.Seed, "seed", 1, "random seed")
	flag.IntVar(&spec.EvalEvery, "eval", 100, "evaluate every this many rounds")
	printKernel := flag.Bool("print-kernel", false, "print the active tensor kernel class and exit")
	saveModel := flag.String("savemodel", "", "write the trained model (gob) to this path")
	metricsOut := flag.String("metrics-out", "", "write Prometheus-text metrics here at exit (plus a .json snapshot beside it)")
	traceOut := flag.String("trace-out", "", "stream a JSONL span/event trace journal to this path")
	pprofDir := flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	flag.Parse()

	if *printKernel {
		// First line: the bare active class (scripted by bench.sh).
		// Then the full dispatch ladder, fastest first, with each
		// rung's backing on this machine — off amd64 the avx2f32 tier
		// shows pure-go: selectable and bit-identical, just unaccelerated.
		fmt.Println(tensor.ActiveKernel())
		fmt.Printf("detected: %s\n", tensor.DetectedKernel())
		fmt.Printf("ladder: %s\n", tensor.Ladder())
		return
	}
	// The kernel class is the rounding regime every result below depends
	// on (DESIGN.md §8); print it up front so recorded runs are
	// attributable, and so multi-process logs show at a glance why a
	// mismatched peer was refused by the handshake fingerprint.
	fmt.Printf("kernel class: %s (detected %s, %s override: %s; ladder %s)\n",
		tensor.ActiveKernel(), tensor.DetectedKernel(),
		tensor.KernelEnv, envOr(tensor.KernelEnv, "unset"), tensor.Ladder())

	spec.Algorithm = hierfair.Algorithm(alg)
	spec.Dataset = hierfair.Dataset(dataset)
	spec.Partition = hierfair.Partition(partition)
	spec.Model = hierfair.ModelKind(mdl)
	spec.Engine = hierfair.Engine(engine)

	// Distributed-role flag combinations, rejected with one-line errors
	// before any work starts.
	switch *role {
	case "":
		if *listen != "" || *connect != "" {
			fmt.Fprintf(os.Stderr, "hierminimax: -listen/-connect need -role (want -role cloud|edge|client-host)\n")
			os.Exit(1)
		}
	case "cloud":
		if *listen == "" {
			fmt.Fprintf(os.Stderr, "hierminimax: -role cloud requires -listen\n")
			os.Exit(1)
		}
		if *connect != "" {
			fmt.Fprintf(os.Stderr, "hierminimax: -role cloud takes no -connect (edges dial the cloud)\n")
			os.Exit(1)
		}
	case "edge", "client-host":
		if *listen == "" {
			fmt.Fprintf(os.Stderr, "hierminimax: -role %s requires -listen\n", *role)
			os.Exit(1)
		}
		if *connect == "" {
			upstream := "cloud"
			if *role == "client-host" {
				upstream = "edge"
			}
			fmt.Fprintf(os.Stderr, "hierminimax: -role %s requires -connect (the %s address)\n", *role, upstream)
			os.Exit(1)
		}
		if *edgeIndex < 0 {
			fmt.Fprintf(os.Stderr, "hierminimax: -edge-index %d negative (want the served edge area)\n", *edgeIndex)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "hierminimax: unknown role %q (want cloud|edge|client-host)\n", *role)
		os.Exit(1)
	}

	obsDone, err := obs.Setup(*metricsOut, *traceOut, *pprofDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hierminimax:", err)
		os.Exit(1)
	}
	// fail flushes observability outputs before exiting on an error path
	// (os.Exit skips defers).
	fail := func(err error) {
		obsDone()
		fmt.Fprintln(os.Stderr, "hierminimax:", err)
		os.Exit(1)
	}

	announce := func(addr string) { fmt.Printf("%s listening on %s\n", *role, addr) }
	var rep *hierfair.Report
	switch *role {
	case "cloud":
		spec.Engine = hierfair.EngineSimNet
		rep, err = hierfair.RunCloud(spec, hierfair.DistConfig{Listen: *listen, Started: announce})
	case "edge", "client-host":
		dist := hierfair.DistConfig{Listen: *listen, Connect: *connect, Edge: *edgeIndex, Started: announce}
		if *role == "edge" {
			err = hierfair.RunEdge(spec, dist)
		} else {
			err = hierfair.RunClientHost(spec, dist)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s %d: run complete\n", *role, *edgeIndex)
		if err := obsDone(); err != nil {
			fmt.Fprintln(os.Stderr, "hierminimax: observability teardown:", err)
			os.Exit(1)
		}
		return
	default:
		rep, err = hierfair.Run(spec)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("%8s %12s %9s %9s %10s\n", "round", "cloudRounds", "average", "worst", "variance")
	for _, p := range rep.History {
		fmt.Printf("%8d %12d %9.4f %9.4f %10.4f\n", p.Round, p.CloudRounds, p.Average, p.Worst, p.Variance)
	}
	fmt.Println()
	fmt.Println(rep.Summary())
	fmt.Printf("edge weights p: %v\n", fmtWeights(rep.EdgeWeights))
	fmt.Printf("traffic: cloud %.2f MB, total %.2f MB\n", float64(rep.CloudBytes)/1e6, float64(rep.TotalBytes)/1e6)
	if spec.Engine == hierfair.EngineSimNet {
		fmt.Printf("simnet: %d messages (+%d control), simulated %.1f s\n",
			rep.MessagesSent, rep.ControlMessages, rep.SimulatedMs/1000)
		fmt.Printf("simnet pool: %d payload vectors allocated, %d recycled\n",
			rep.PoolAllocated, rep.PoolRecycled)
		if rep.MessagesLost+rep.Timeouts+rep.Retries+rep.Crashes > 0 {
			fmt.Printf("simnet faults: %d messages lost, %d timeouts, %d retries, %d client crashes\n",
				rep.MessagesLost, rep.Timeouts, rep.Retries, rep.Crashes)
		}
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fail(err)
		}
		if err := rep.SaveModel(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("model written to %s\n", *saveModel)
	}
	if err := obsDone(); err != nil {
		fmt.Fprintln(os.Stderr, "hierminimax: observability teardown:", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		fmt.Printf("trace journal written to %s\n", *traceOut)
	}
	if *pprofDir != "" {
		fmt.Printf("profiles written to %s\n", *pprofDir)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func fmtWeights(p []float64) string {
	out := "["
	for i, v := range p {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", v)
	}
	return out + "]"
}
