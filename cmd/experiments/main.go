// Command experiments regenerates the paper's tables and figures.
//
//	experiments -exp fig3 -scale small     # Fig. 3 (convex comparison)
//	experiments -exp fig4 -scale small     # Fig. 4 (non-convex comparison)
//	experiments -exp table2 -scale small   # Table 2 (fairness across datasets)
//	experiments -exp table1 -scale small   # Table 1 companion (alpha sweep)
//	experiments -exp ablations -scale smoke
//	experiments -exp all -scale smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|table2|table1|rates|stationarity|ablations|chaos|all")
	scaleName := flag.String("scale", "smoke", "scale: smoke|small|full")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("out", "", "directory for CSV/JSON artifacts (empty = none)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus-text metrics here at exit (plus a .json snapshot beside it)")
	traceOut := flag.String("trace-out", "", "stream a JSONL span/event trace journal to this path")
	pprofDir := flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.Smoke
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}

	obsDone, err := obs.Setup(*metricsOut, *traceOut, *pprofDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// Phase timings come from obs spans, so the harness needs a hub even
	// when no exporter flag asked for one.
	if !obs.Enabled() {
		obs.SetGlobal(obs.New())
	}
	fail := func(format string, args ...any) {
		obsDone()
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	run := func(name string, fn func() (experiments.Artifact, error)) {
		fmt.Printf("[%s started at scale %s]\n", name, scale)
		sp := obs.Start("experiment-phase", obs.Str("phase", name), obs.Str("scale", scale.String()))
		res, err := fn()
		if err != nil {
			fail("experiments: %s: %v\n", name, err)
		}
		if err := experiments.Export(res, os.Stdout, *out, name+"-"+scale.String()); err != nil {
			fail("experiments: export %s: %v\n", name, err)
		}
		fmt.Printf("[%s completed in %v at scale %s]\n\n", name, sp.End().Round(time.Millisecond), scale)
	}

	all := *exp == "all"
	if all || *exp == "fig3" {
		run("fig3", func() (experiments.Artifact, error) { return experiments.Fig3(scale, *seed) })
	}
	if all || *exp == "fig4" {
		run("fig4", func() (experiments.Artifact, error) { return experiments.Fig4(scale, *seed) })
	}
	if all || *exp == "table2" {
		run("table2", func() (experiments.Artifact, error) { return experiments.Table2(scale, *seed) })
	}
	if all || *exp == "table1" {
		run("table1", func() (experiments.Artifact, error) { return experiments.Tradeoff(scale, *seed) })
	}
	if all || *exp == "rates" {
		run("rates-alpha0", func() (experiments.Artifact, error) { return experiments.ConvergenceRate(scale, 0, *seed) })
		run("rates-alpha05", func() (experiments.Artifact, error) { return experiments.ConvergenceRate(scale, 0.5, *seed) })
	}
	if all || *exp == "stationarity" {
		run("stationarity", func() (experiments.Artifact, error) { return experiments.Stationarity(scale, *seed) })
	}
	if all || *exp == "ablations" {
		run("ablations", func() (experiments.Artifact, error) { return experiments.Ablations(scale, *seed) })
	}
	if all || *exp == "chaos" {
		run("chaos", func() (experiments.Artifact, error) { return experiments.ChaosSweep(scale, *seed) })
	}
	if err := obsDone(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: observability teardown:", err)
		os.Exit(1)
	}
}
