// Command experiments regenerates the paper's tables and figures.
//
//	experiments -exp fig3 -scale small     # Fig. 3 (convex comparison)
//	experiments -exp fig4 -scale small     # Fig. 4 (non-convex comparison)
//	experiments -exp table2 -scale small   # Table 2 (fairness across datasets)
//	experiments -exp table1 -scale small   # Table 1 companion (alpha sweep)
//	experiments -exp ablations -scale smoke
//	experiments -exp compression -scale smoke  # accuracy vs bytes-on-wire
//	experiments -exp all -scale smoke -jobs 8
//
// -jobs N runs the independent training runs inside each experiment on
// N workers (default GOMAXPROCS). Artifacts are bitwise identical for
// every N: the scheduler commits results in submission order and every
// run derives its randomness from the spec, never from the interleaving.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// knownExps is the -exp vocabulary (beyond "all").
var knownExps = map[string]bool{
	"fig3": true, "fig4": true, "table2": true, "table1": true,
	"rates": true, "stationarity": true, "ablations": true, "chaos": true,
	"compression": true,
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|table2|table1|rates|stationarity|ablations|chaos|compression|all")
	scaleName := flag.String("scale", "smoke", "scale: smoke|small|full")
	seed := flag.Uint64("seed", 42, "random seed")
	jobs := flag.Int("jobs", 0, "concurrent training runs (0 = GOMAXPROCS); any value yields identical artifacts")
	population := flag.Int("population", 0, "registered client population for the sparse regime (fig3|fig4 only; requires -sample-per-round)")
	samplePerRound := flag.Int("sample-per-round", 0, "clients sampled per round from -population")
	out := flag.String("out", "", "directory for CSV/JSON artifacts (empty = none)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus-text metrics here at exit (plus a .json snapshot beside it)")
	traceOut := flag.String("trace-out", "", "stream a JSONL span/event trace journal to this path")
	pprofDir := flag.String("pprof", "", "capture cpu.pprof and heap.pprof into this directory")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.Smoke
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}
	if *exp != "all" && !knownExps[*exp] {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want fig3|fig4|table2|table1|rates|stationarity|ablations|chaos|compression|all)\n", *exp)
		os.Exit(1)
	}
	if (*population > 0) != (*samplePerRound > 0) {
		fmt.Fprintf(os.Stderr, "experiments: -population and -sample-per-round must be set together\n")
		os.Exit(1)
	}
	if *population > 0 && *exp != "fig3" && *exp != "fig4" {
		fmt.Fprintf(os.Stderr, "experiments: -population applies to -exp fig3 or fig4 only\n")
		os.Exit(1)
	}
	// Artifacts are reproducible per (seed, kernel class): the rounding
	// regime is part of the provenance, so announce the active class,
	// the CPU-detected default and every rung's backing before any run
	// (off amd64 the avx2f32 tier runs its bit-identical pure-Go twins).
	fmt.Printf("kernel class: %s (detected %s, ladder %s)\n",
		tensor.ActiveKernel(), tensor.DetectedKernel(), tensor.Ladder())

	obsDone, err := obs.Setup(*metricsOut, *traceOut, *pprofDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	// Phase timings come from obs spans, so the harness needs a hub even
	// when no exporter flag asked for one.
	if !obs.Enabled() {
		obs.SetGlobal(obs.New())
	}

	pool := sched.New(*jobs)
	progress := func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r[sweep %d/%d runs, %d workers]", done, total, pool.Workers())
	}
	pool.SetProgress(progress)
	clearProgress := func() {
		if done, _ := pool.Done(); done > 0 {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
	}

	// An experiment failure no longer aborts the invocation: the
	// remaining experiments still run and the combined failures produce
	// one non-zero exit at the end.
	var failures []string
	start := time.Now()
	run := func(name string, fn func() (experiments.Artifact, error)) {
		fmt.Printf("[%s started at scale %s]\n", name, scale)
		sp := obs.Start("experiment-phase", obs.Str("phase", name), obs.Str("scale", scale.String()))
		res, err := fn()
		clearProgress()
		if err != nil {
			sp.End()
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			return
		}
		if err := experiments.Export(res, os.Stdout, *out, name+"-"+scale.String()); err != nil {
			sp.End()
			fmt.Fprintf(os.Stderr, "experiments: export %s: %v\n", name, err)
			failures = append(failures, fmt.Sprintf("export %s: %v", name, err))
			return
		}
		fmt.Printf("[%s completed in %v at scale %s]\n\n", name, sp.End().Round(time.Millisecond), scale)
	}

	all := *exp == "all"
	if all || *exp == "fig3" {
		run("fig3", func() (experiments.Artifact, error) {
			if *population > 0 {
				return experiments.Fig3Population(pool, scale, *seed, *population, *samplePerRound)
			}
			return experiments.Fig3(pool, scale, *seed)
		})
	}
	if all || *exp == "fig4" {
		run("fig4", func() (experiments.Artifact, error) {
			if *population > 0 {
				return experiments.Fig4Population(pool, scale, *seed, *population, *samplePerRound)
			}
			return experiments.Fig4(pool, scale, *seed)
		})
	}
	if all || *exp == "table2" {
		run("table2", func() (experiments.Artifact, error) { return experiments.Table2(pool, scale, *seed) })
	}
	if all || *exp == "table1" {
		run("table1", func() (experiments.Artifact, error) { return experiments.Tradeoff(pool, scale, *seed) })
	}
	if all || *exp == "rates" {
		run("rates-alpha0", func() (experiments.Artifact, error) { return experiments.ConvergenceRate(pool, scale, 0, *seed) })
		run("rates-alpha05", func() (experiments.Artifact, error) { return experiments.ConvergenceRate(pool, scale, 0.5, *seed) })
	}
	if all || *exp == "stationarity" {
		run("stationarity", func() (experiments.Artifact, error) { return experiments.Stationarity(pool, scale, *seed) })
	}
	if all || *exp == "ablations" {
		run("ablations", func() (experiments.Artifact, error) { return experiments.Ablations(pool, scale, *seed) })
	}
	if all || *exp == "chaos" {
		run("chaos", func() (experiments.Artifact, error) { return experiments.ChaosSweep(pool, scale, *seed) })
	}
	if all || *exp == "compression" {
		run("compression", func() (experiments.Artifact, error) { return experiments.CompressionSweep(pool, scale, *seed) })
	}

	done, _ := pool.Done()
	wall := time.Since(start)
	hits, misses := data.CacheStats()
	if done > 0 {
		fmt.Printf("[sweep: %d runs on %d workers in %v (%.2f runs/sec), dataset cache %d hits / %d misses]\n",
			done, pool.Workers(), wall.Round(time.Millisecond),
			float64(done)/wall.Seconds(), hits, misses)
	}

	if err := obsDone(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: observability teardown:", err)
		os.Exit(1)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  - %s\n", f)
		}
		os.Exit(1)
	}
}
