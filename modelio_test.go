package hierfair

import (
	"bytes"
	"testing"
)

func TestSaveLoadLogReg(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Rounds = 100
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	clf, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if clf.InputDim() != 48 || clf.NumClasses() != 10 {
		t.Fatalf("restored dims %d/%d", clf.InputDim(), clf.NumClasses())
	}
	// The restored classifier must agree with the live report on a set
	// of probe points.
	for i := 0; i < 50; i++ {
		x := make([]float64, 48)
		for j := range x {
			x[j] = float64((i*31+j*7)%13) * 0.1
		}
		if rep.Predict(x) != clf.Predict(x) {
			t.Fatalf("restored model disagrees at probe %d", i)
		}
	}
}

func TestSaveLoadMLP(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Model = ModelMLP
	spec.Hidden1, spec.Hidden2 = 12, 8
	spec.Rounds = 60
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	clf, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 48)
	x[3] = 1
	if rep.Predict(x) != clf.Predict(x) {
		t.Fatal("restored MLP disagrees")
	}
}

func TestClassifierExtraction(t *testing.T) {
	spec := smokeSpec(AlgHierMinimax)
	spec.Rounds = 60
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	clf := rep.Classifier()
	x := make([]float64, 48)
	if clf.Predict(x) != rep.Predict(x) {
		t.Fatal("classifier disagrees with report")
	}
	// Accuracy on a trivially self-consistent set.
	xs := [][]float64{x}
	ys := []int{clf.Predict(x)}
	if clf.Accuracy(xs, ys) != 1 {
		t.Fatal("Accuracy broken")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadModelRejectsLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	spec := smokeSpec(AlgHierMinimax)
	spec.Rounds = 30
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: reload, truncate parameters, re-save through the struct
	// by crafting a short parameter vector.
	clf, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = clf
	// Directly exercise the mismatch branch.
	var buf2 bytes.Buffer
	bad := savedModel{Kind: ModelLogReg, InputDim: 4, NumClasses: 3, W: []float64{1, 2}}
	if err := encodeGob(&buf2, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	var buf3 bytes.Buffer
	badKind := savedModel{Kind: "bogus", InputDim: 4, NumClasses: 3, W: make([]float64, 15)}
	if err := encodeGob(&buf3, badKind); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf3); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
