package hierfair

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/model"
)

// savedModel is the gob wire format of a trained classifier.
type savedModel struct {
	Kind             ModelKind
	InputDim         int
	NumClasses       int
	Hidden1, Hidden2 int
	W                []float64
}

// Classifier is a trained, self-contained model restored by LoadModel
// (or extracted from a Report); it carries its own parameters and can
// classify feature vectors.
type Classifier struct {
	kind             ModelKind
	hidden1, hidden2 int
	mdl              model.Model
	w                []float64
}

// Predict returns the argmax class for x.
func (c *Classifier) Predict(x []float64) int { return c.mdl.Predict(c.w, x) }

// InputDim returns the expected feature dimension.
func (c *Classifier) InputDim() int { return c.mdl.InputDim() }

// NumClasses returns the number of classes.
func (c *Classifier) NumClasses() int { return c.mdl.NumClasses() }

// Accuracy evaluates the classifier on a labelled set.
func (c *Classifier) Accuracy(xs [][]float64, ys []int) float64 {
	return model.Accuracy(c.mdl, c.w, xs, ys)
}

// Classifier extracts the trained model from a Report as a standalone
// Classifier (copying the parameters).
func (r *Report) Classifier() *Classifier {
	c := &Classifier{kind: ModelLogReg, mdl: r.mdl.Clone(), w: append([]float64(nil), r.w...)}
	if m, ok := r.mdl.(*model.MLP); ok {
		c.kind = ModelMLP
		c.hidden1, c.hidden2 = m.HiddenSizes()
	}
	return c
}

// SaveModel writes the trained global model to w in a self-describing
// binary format (encoding/gob), so a model trained in one process can be
// served by another.
func (r *Report) SaveModel(w io.Writer) error {
	sm := savedModel{InputDim: r.mdl.InputDim(), NumClasses: r.mdl.NumClasses(), W: r.w}
	switch m := r.mdl.(type) {
	case *model.Linear:
		sm.Kind = ModelLogReg
	case *model.MLP:
		sm.Kind = ModelMLP
		sm.Hidden1, sm.Hidden2 = m.HiddenSizes()
	default:
		return fmt.Errorf("hierfair: cannot serialize model type %T", r.mdl)
	}
	return gob.NewEncoder(w).Encode(sm)
}

// LoadModel restores a classifier written by SaveModel.
func LoadModel(r io.Reader) (*Classifier, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("hierfair: decode model: %w", err)
	}
	var mdl model.Model
	switch sm.Kind {
	case ModelLogReg:
		mdl = model.NewLinear(sm.InputDim, sm.NumClasses)
	case ModelMLP:
		mdl = model.NewMLP(sm.InputDim, sm.Hidden1, sm.Hidden2, sm.NumClasses)
	default:
		return nil, fmt.Errorf("hierfair: unknown saved model kind %q", sm.Kind)
	}
	if len(sm.W) != mdl.Dim() {
		return nil, fmt.Errorf("hierfair: saved parameters have %d values, model wants %d", len(sm.W), mdl.Dim())
	}
	return &Classifier{kind: sm.Kind, hidden1: sm.Hidden1, hidden2: sm.Hidden2, mdl: mdl, w: sm.W}, nil
}

// encodeGob is a tiny helper shared with the tests.
func encodeGob(w io.Writer, v any) error { return gob.NewEncoder(w).Encode(v) }
